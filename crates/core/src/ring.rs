//! The plain rotating-token ring: System Message-Passing with rule 3′.
//!
//! The token perpetually circulates `x → x⁺¹`. A node appends its datum (or
//! enters its critical section) only while holding the token, giving O(N)
//! responsiveness (Lemma 4): once some node is ready, at most `N` message
//! delays pass before the token reaches *a* ready node.
//!
//! This is the baseline the paper's simulation study (Figures 9 and 10)
//! compares System BinarySearch against.

use std::collections::{BTreeSet, VecDeque};

use atp_net::{Context, MsgClass, Node, NodeId, SimTime};

use crate::checkpoint::{Checkpoint, CKPT_RING};
use crate::config::ProtocolConfig;
use crate::event::{EventBuf, EventSource, TokenEvent, Want, WantKind};
use crate::handoff::{decode_retransmit_timer, retransmit_timer_kind, Handoff};
use crate::order::OrderState;
use crate::regen::{RegenEngine, RegenMsg, RegenReply, RegenVerdict};
use crate::token::TokenFrame;
use crate::types::{RequestId, VisitStamp};

/// Messages of the ring protocol.
#[derive(Debug, Clone)]
pub enum RingMsg {
    /// The circulating token (always `MsgClass::Token`). Boxed so moving a
    /// `RingMsg` through the event queue copies a pointer, not the frame.
    Token(Box<TokenFrame>),
    /// Failure-handling traffic (Section 5).
    Regen(RegenMsg),
}

const TIMER_SERVICE: u64 = 1;
const TIMER_PASS: u64 = 2;
const TIMER_REGEN: u64 = 3;
const TIMER_INQUIRY: u64 = 4;
// Timer kind 5 (low byte) is the retransmit timer, see `crate::handoff`.
const TIMER_ANNOUNCE: u64 = 6;

/// Re-announce period for generation fencing while excluded nodes remain.
const ANNOUNCE_PERIOD: u64 = 16;

/// Reply-collection window for an inquiry, in ticks (2 round trips at unit
/// delay, with slack for jittery latency models).
const INQUIRY_WINDOW: u64 = 8;

#[derive(Debug)]
struct Outstanding {
    req: RequestId,
    payload: u64,
    made_at: SimTime,
}

#[derive(Debug)]
enum HoldState {
    /// Holding, free to serve or pass.
    Idle,
    /// Pass timer armed (adaptive token speed).
    PassArmed,
    /// Mid-service: timer will fire after the critical section.
    Serving { req: RequestId, payload: u64 },
}

#[derive(Debug)]
struct Holding {
    token: Box<TokenFrame>,
    state: HoldState,
}

/// One node of the rotating-token ring protocol.
///
/// Construct with [`RingNode::new`] and run inside an
/// [`atp_net::World`] (or any transport via [`atp_net::Harness`]). Node 0
/// mints the initial token in `on_init`, matching the paper's initial state
/// where some distinguished node starts with `T = x`.
#[derive(Debug)]
pub struct RingNode {
    cfg: ProtocolConfig,
    events: EventBuf,
    order: OrderState,
    outstanding: VecDeque<Outstanding>,
    next_req_seq: u64,
    last_visit: VisitStamp,
    last_pass: Option<NodeId>,
    holding: Option<Holding>,
    regen: RegenEngine,
    handoff: Handoff<RingMsg>,
    rejoining: BTreeSet<NodeId>,
    leaving: BTreeSet<NodeId>,
    departed: bool,
    /// Gap count already covered by an outstanding sync request.
    synced_gaps: u64,
    grants: u64,
    token_sends: u64,
}

impl RingNode {
    /// Creates a node with the given configuration.
    pub fn new(cfg: ProtocolConfig) -> Self {
        RingNode {
            order: OrderState::new(cfg.record_log),
            cfg,
            events: EventBuf::default(),
            outstanding: VecDeque::new(),
            next_req_seq: 0,
            last_visit: VisitStamp::NEVER,
            last_pass: None,
            holding: None,
            regen: RegenEngine::new(),
            handoff: Handoff::new(),
            rejoining: BTreeSet::new(),
            leaving: BTreeSet::new(),
            departed: false,
            synced_gaps: 0,
            grants: 0,
            token_sends: 0,
        }
    }

    /// Whether this node has gracefully left the group.
    pub fn is_departed(&self) -> bool {
        self.departed
    }

    /// The node's applied history (local prefix of `H`).
    pub fn order(&self) -> &OrderState {
        &self.order
    }

    /// Captures the node's durable state for crash–restart recovery.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::capture(
            CKPT_RING,
            &self.order,
            self.next_req_seq,
            self.last_visit,
            self.regen.generation,
            self.handoff.watermark(),
        )
    }

    /// Rebuilds a node from a checkpoint (warm restart). Volatile state —
    /// held token, pending transfers, outstanding requests — starts empty;
    /// drive the restarted node through `on_recover`, never `on_init`.
    pub fn from_checkpoint(cfg: ProtocolConfig, ck: &Checkpoint) -> Self {
        assert_eq!(ck.protocol, CKPT_RING, "checkpoint from a different protocol");
        let mut node = RingNode::new(cfg);
        node.order = ck.restore_order(cfg.record_log);
        node.next_req_seq = ck.next_req_seq;
        node.last_visit = ck.visit_stamp();
        node.regen.witness(ck.generation);
        node.handoff.restore_watermark(ck.watermark);
        node
    }

    /// Total grants this node has received.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Requests currently queued locally.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether this node currently holds the token.
    pub fn holds_token(&self) -> bool {
        self.holding.is_some()
    }

    /// The node's last visit stamp.
    pub fn last_visit(&self) -> VisitStamp {
        self.last_visit
    }

    /// Token-bearing messages this node has sent.
    pub fn token_sends(&self) -> u64 {
        self.token_sends
    }

    /// Token frames discarded as duplicates (watermark or double
    /// possession) instead of forking possession.
    pub fn duplicate_tokens_discarded(&self) -> u64 {
        self.handoff.duplicates_discarded
    }

    /// Token frames retransmitted after an ack timeout.
    pub fn token_retransmits(&self) -> u64 {
        self.handoff.retransmits
    }

    /// Current token generation this node believes in.
    pub fn generation(&self) -> u32 {
        self.regen.generation
    }

    fn witness_generation(&mut self, generation: u32, at: SimTime) {
        if self.regen.witness(generation) {
            // A held token from a superseded generation is dead weight.
            if let Some(h) = &self.holding {
                if h.token.generation < generation {
                    let stale = h.token.generation;
                    self.holding = None;
                    self.events.push(TokenEvent::StaleTokenDiscarded {
                        generation: stale,
                        at,
                    });
                }
            }
        }
    }

    fn handle_token(&mut self, mut token: Box<TokenFrame>, ctx: &mut Context<'_, RingMsg>) {
        if token.generation < self.regen.generation {
            self.events.push(TokenEvent::StaleTokenDiscarded {
                generation: token.generation,
                at: ctx.now(),
            });
            return;
        }
        self.witness_generation(token.generation, ctx.now());
        if self.holding.is_some() {
            // Duplicate token of the same generation: a duplicated or
            // retransmitted frame got past the watermark. Discard, count.
            self.handoff.count_duplicate();
            return;
        }
        self.last_visit = token.on_possess(ctx.id(), true);
        self.order.apply(token.carried(), ctx.now(), &mut self.events);
        self.maybe_request_sync(ctx);
        for node in std::mem::take(&mut self.rejoining) {
            token.readmit(node);
        }
        for node in std::mem::take(&mut self.leaving) {
            token.exclude(node);
        }
        if self.departed {
            // Raced departure: exclude ourselves and pass straight on.
            token.exclude(ctx.id());
            self.holding = Some(Holding {
                token,
                state: HoldState::Idle,
            });
            self.send_token(ctx);
            return;
        }
        self.holding = Some(Holding {
            token,
            state: HoldState::Idle,
        });
        self.announce_generation(ctx);
        self.progress(ctx);
    }

    /// Generation fencing: while the token lists excluded nodes, the holder
    /// periodically tells them which generation is live, so a node isolated
    /// during a partition cannot keep serving a superseded token after heal.
    fn announce_generation(&mut self, ctx: &mut Context<'_, RingMsg>) {
        if !self.cfg.regeneration {
            return;
        }
        let Some(h) = &self.holding else { return };
        if h.token.excluded().is_empty() {
            return;
        }
        let generation = h.token.generation;
        let targets: Vec<NodeId> = h.token.excluded().to_vec();
        for node in targets {
            ctx.send(
                node,
                RingMsg::Regen(RegenMsg::GenAnnounce { generation }),
                MsgClass::Token,
            );
        }
        ctx.set_timer(ANNOUNCE_PERIOD, TIMER_ANNOUNCE);
    }

    fn finish_service(&mut self, req: RequestId, payload: u64, ctx: &mut Context<'_, RingMsg>) {
        let holding = self.holding.as_mut().expect("finishing without token");
        let entry = holding.token.append(ctx.id(), payload);
        holding.token.mark_satisfied(req);
        self.order.apply(&[entry], ctx.now(), &mut self.events);
        self.events.push(TokenEvent::Released {
            req,
            at: ctx.now(),
        });
    }

    /// Serve local requests, then pass the token onward.
    fn progress(&mut self, ctx: &mut Context<'_, RingMsg>) {
        loop {
            let Some(holding) = self.holding.as_mut() else {
                return;
            };
            match holding.state {
                HoldState::Serving { .. } => return,
                HoldState::Idle | HoldState::PassArmed => {
                    if let Some(out) = self.outstanding.pop_front() {
                        self.grants += 1;
                        self.events.push(TokenEvent::Granted {
                            req: out.req,
                            at: ctx.now(),
                        });
                        if self.cfg.service_ticks == 0 {
                            self.finish_service(out.req, out.payload, ctx);
                            continue;
                        }
                        holding.state = HoldState::Serving {
                            req: out.req,
                            payload: out.payload,
                        };
                        ctx.set_timer(self.cfg.service_ticks, TIMER_SERVICE);
                        return;
                    }
                    // Nothing to serve: pass (possibly after an idle hold).
                    let delay = self.cfg.idle_delay(holding.token.idle_rounds());
                    if delay == 0 {
                        self.send_token(ctx);
                    } else if !matches!(holding.state, HoldState::PassArmed) {
                        holding.state = HoldState::PassArmed;
                        ctx.set_timer(delay, TIMER_PASS);
                    }
                    return;
                }
            }
        }
    }

    fn send_token(&mut self, ctx: &mut Context<'_, RingMsg>) {
        let Some(mut holding) = self.holding.take() else {
            return;
        };
        let succ = holding.token.next_live_successor(ctx.topology(), ctx.id());
        self.last_pass = Some(succ);
        self.token_sends += 1;
        holding.token.bump_transfer();
        let generation = holding.token.generation;
        let transfer_seq = holding.token.transfer_seq();
        let msg = RingMsg::Token(holding.token);
        if succ != ctx.id() {
            // Self-sends (degenerate one-node ring) must pass the watermark.
            self.handoff.observe_send(generation, transfer_seq);
        }
        if self.cfg.token_acks {
            self.handoff.track(succ, msg.clone(), generation, transfer_seq);
            ctx.set_timer(
                self.cfg.ack_backoff(0),
                retransmit_timer_kind(transfer_seq, 0),
            );
        }
        ctx.send(succ, msg, MsgClass::Token);
    }

    fn my_regen_view(&self) -> RegenReply {
        RegenReply {
            generation: self.regen.generation,
            stamp: self.last_visit,
            holder: self.holding.is_some(),
            passed_to: self.last_pass,
            applied_seq: self.order.applied_seq(),
        }
    }

    fn arm_regen_timer(&mut self, ctx: &mut Context<'_, RingMsg>) {
        if self.cfg.regeneration {
            let timeout = self.cfg.effective_regen_timeout(ctx.topology().len());
            ctx.set_timer(timeout, TIMER_REGEN);
        }
    }

    fn broadcast_inquiry(&mut self, ctx: &mut Context<'_, RingMsg>) {
        self.regen.start_inquiry();
        let me = ctx.id();
        let generation = self.regen.generation;
        for peer in ctx.topology().iter() {
            if peer != me {
                ctx.send(
                    peer,
                    RingMsg::Regen(RegenMsg::Inquiry { generation }),
                    MsgClass::Token,
                );
            }
        }
        ctx.set_timer(INQUIRY_WINDOW, TIMER_INQUIRY);
    }

    fn handle_regen(&mut self, from: NodeId, msg: RegenMsg, ctx: &mut Context<'_, RingMsg>) {
        match msg {
            RegenMsg::Inquiry { generation } => {
                self.witness_generation(generation, ctx.now());
                let view = self.my_regen_view();
                ctx.send(from, RingMsg::Regen(RegenMsg::Reply(view)), MsgClass::Token);
            }
            RegenMsg::Reply(reply) => {
                let before = self.regen.generation;
                self.regen.record_reply(from, reply);
                if self.regen.generation > before {
                    self.witness_generation(self.regen.generation, ctx.now());
                }
            }
            RegenMsg::Please {
                new_gen,
                known_seq,
                dead,
            } => {
                let window = self.cfg.effective_window(ctx.topology().len());
                if let Some(token) = self.regen.mint(new_gen, known_seq, window, dead) {
                    self.events.push(TokenEvent::Regenerated {
                        by: ctx.id(),
                        generation: new_gen,
                        at: ctx.now(),
                    });
                    self.witness_generation(new_gen, ctx.now());
                    self.handle_token(Box::new(token), ctx);
                }
            }
            RegenMsg::SyncRequest { from_seq } => {
                let entries = self
                    .order
                    .suffix_from(from_seq, crate::regen::SYNC_REPLY_MAX);
                if !entries.is_empty() {
                    ctx.send(
                        from,
                        RingMsg::Regen(RegenMsg::SyncReply { entries }),
                        MsgClass::Token,
                    );
                }
            }
            RegenMsg::SyncReply { entries } => {
                self.order.apply(&entries, ctx.now(), &mut self.events);
            }
            RegenMsg::Rejoin => {
                self.leaving.remove(&from);
                self.rejoining.insert(from);
                if let Some(h) = self.holding.as_mut() {
                    h.token.readmit(from);
                    self.rejoining.remove(&from);
                }
            }
            RegenMsg::Leave => {
                self.rejoining.remove(&from);
                self.leaving.insert(from);
                if let Some(h) = self.holding.as_mut() {
                    h.token.exclude(from);
                    self.leaving.remove(&from);
                }
            }
            RegenMsg::TokenAck {
                generation,
                transfer_seq,
            } => {
                self.handoff.acked(generation, transfer_seq);
            }
            RegenMsg::GenAnnounce { generation } => {
                if generation > self.regen.generation {
                    // We sat out a regeneration (partition, crash): adopt the
                    // live generation and ask the holder to readmit us.
                    self.witness_generation(generation, ctx.now());
                    if !self.departed {
                        ctx.send(from, RingMsg::Regen(RegenMsg::Rejoin), MsgClass::Token);
                    }
                    if !self.outstanding.is_empty() && self.holding.is_none() {
                        self.arm_regen_timer(ctx);
                    }
                } else if generation < self.regen.generation {
                    // The announcer is the stale one: fence it back.
                    ctx.send(
                        from,
                        RingMsg::Regen(RegenMsg::GenAnnounce {
                            generation: self.regen.generation,
                        }),
                        MsgClass::Token,
                    );
                }
            }
        }
    }


    /// Requests a state transfer from the cyclic successor when this node
    /// has fallen behind the token's carried window (detected via gap
    /// accounting). The reply fills the local prefix in order, so the
    /// prefix property is never at risk.
    fn maybe_request_sync(&mut self, ctx: &mut Context<'_, RingMsg>) {
        let gaps = self.order.gap_events();
        if gaps > self.synced_gaps {
            self.synced_gaps = gaps;
            let succ = ctx.topology().successor(ctx.id());
            ctx.send(
                succ,
                RingMsg::Regen(RegenMsg::SyncRequest {
                    from_seq: self.order.applied_seq() + 1,
                }),
                MsgClass::Token,
            );
        }
    }

    fn announce(&mut self, msg: RegenMsg, ctx: &mut Context<'_, RingMsg>) {
        let me = ctx.id();
        for peer in ctx.topology().iter() {
            if peer != me {
                ctx.send(peer, RingMsg::Regen(msg.clone()), MsgClass::Token);
            }
        }
    }
}

impl Node for RingNode {
    type Msg = RingMsg;
    type Ext = Want;

    fn on_init(&mut self, ctx: &mut Context<'_, RingMsg>) {
        let holder = self.cfg.effective_initial_holder(ctx.topology().len());
        if ctx.id().index() == holder as usize {
            let token = Box::new(TokenFrame::new(self.cfg.effective_window(ctx.topology().len())));
            self.handle_token(token, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: RingMsg, ctx: &mut Context<'_, RingMsg>) {
        match msg {
            RingMsg::Token(frame) => {
                if self.cfg.token_acks {
                    // Ack every receipt, duplicates included: the sender may
                    // be retransmitting because our previous ack was lost.
                    ctx.send(
                        from,
                        RingMsg::Regen(RegenMsg::TokenAck {
                            generation: frame.generation,
                            transfer_seq: frame.transfer_seq(),
                        }),
                        MsgClass::Token,
                    );
                }
                if frame.generation >= self.regen.generation
                    && !self.handoff.accept(frame.generation, frame.transfer_seq())
                {
                    return; // duplicate or replayed frame, counted
                }
                self.handle_token(frame, ctx)
            }
            RingMsg::Regen(m) => self.handle_regen(from, m, ctx),
        }
    }

    fn on_external(&mut self, ev: Want, ctx: &mut Context<'_, RingMsg>) {
        match ev.kind {
            WantKind::Acquire => {}
            WantKind::Leave => {
                self.departed = true;
                self.outstanding.clear();
                self.announce(RegenMsg::Leave, ctx);
                if let Some(h) = self.holding.as_mut() {
                    h.token.exclude(ctx.id());
                    if matches!(h.state, HoldState::Idle | HoldState::PassArmed) {
                        h.state = HoldState::Idle;
                        self.send_token(ctx);
                    }
                }
                return;
            }
            WantKind::Rejoin => {
                self.departed = false;
                self.announce(RegenMsg::Rejoin, ctx);
                return;
            }
        }
        if self.departed {
            return; // departed nodes do not request
        }
        self.next_req_seq += 1;
        let req = RequestId::new(ctx.id(), self.next_req_seq);
        self.events.push(TokenEvent::Requested {
            req,
            at: ctx.now(),
        });
        self.outstanding.push_back(Outstanding {
            req,
            payload: ev.payload,
            made_at: ctx.now(),
        });
        if self.outstanding.len() == 1 && self.holding.is_none() {
            self.arm_regen_timer(ctx);
        }
        self.progress(ctx);
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, RingMsg>) {
        if let Some((tseq, attempt)) = decode_retransmit_timer(kind) {
            if self.handoff.timer_due(tseq, attempt) {
                if let Some((to, msg, tseq, next)) =
                    self.handoff.next_attempt(self.cfg.ack_max_retries)
                {
                    ctx.send(to, msg, MsgClass::Token);
                    ctx.set_timer(
                        self.cfg.ack_backoff(next),
                        retransmit_timer_kind(tseq, next),
                    );
                }
            }
            return;
        }
        match kind {
            TIMER_ANNOUNCE => self.announce_generation(ctx),
            TIMER_SERVICE => {
                let Some(holding) = self.holding.as_mut() else {
                    return;
                };
                if let HoldState::Serving { req, payload } = holding.state {
                    holding.state = HoldState::Idle;
                    self.finish_service(req, payload, ctx);
                    self.progress(ctx);
                }
            }
            TIMER_PASS => {
                if let Some(h) = self.holding.as_mut() {
                    if matches!(h.state, HoldState::PassArmed) {
                        h.state = HoldState::Idle;
                        if self.outstanding.is_empty() {
                            self.send_token(ctx);
                        } else {
                            self.progress(ctx);
                        }
                    }
                }
            }
            TIMER_REGEN => {
                if self.holding.is_some() || !self.cfg.regeneration {
                    return;
                }
                let Some(front) = self.outstanding.front() else {
                    return;
                };
                let timeout = self.cfg.effective_regen_timeout(ctx.topology().len());
                let waited = ctx.now().since(front.made_at);
                if waited >= timeout {
                    if !self.regen.is_inquiring() {
                        self.broadcast_inquiry(ctx);
                    }
                } else {
                    ctx.set_timer(timeout - waited, TIMER_REGEN);
                }
            }
            TIMER_INQUIRY => {
                if !self.cfg.regeneration {
                    return;
                }
                let view = self.my_regen_view();
                match self.regen.conclude(ctx.topology(), ctx.id(), view) {
                    RegenVerdict::Wait { .. } => {
                        if !self.outstanding.is_empty() && self.holding.is_none() {
                            self.arm_regen_timer(ctx);
                        }
                    }
                    RegenVerdict::Regenerate {
                        target,
                        new_gen,
                        known_seq,
                        dead,
                    } => {
                        if target == ctx.id() {
                            let window = self.cfg.effective_window(ctx.topology().len());
                            if let Some(token) = self.regen.mint(new_gen, known_seq, window, dead)
                            {
                                self.events.push(TokenEvent::Regenerated {
                                    by: ctx.id(),
                                    generation: new_gen,
                                    at: ctx.now(),
                                });
                                self.handle_token(Box::new(token), ctx);
                            }
                        } else {
                            ctx.send(
                                target,
                                RingMsg::Regen(RegenMsg::Please {
                                    new_gen,
                                    known_seq,
                                    dead,
                                }),
                                MsgClass::Token,
                            );
                            self.arm_regen_timer(ctx);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, RingMsg>) {
        // A retransmit from before the crash could resurrect a stale token.
        self.handoff.clear_pending();
        // Conservative: never resurrect a possibly superseded token.
        if self.holding.take().is_some() {
            self.events.push(TokenEvent::StaleTokenDiscarded {
                generation: self.regen.generation,
                at: ctx.now(),
            });
        }
        if self.cfg.regeneration {
            // Announce recovery so the next token holder readmits us.
            let me = ctx.id();
            for peer in ctx.topology().iter() {
                if peer != me {
                    ctx.send(peer, RingMsg::Regen(RegenMsg::Rejoin), MsgClass::Token);
                }
            }
        }
        if !self.outstanding.is_empty() {
            self.arm_regen_timer(ctx);
        }
    }
}

impl EventSource for RingNode {
    fn take_events(&mut self) -> Vec<TokenEvent> {
        self.events.take()
    }

    fn take_events_into(&mut self, out: &mut Vec<TokenEvent>) {
        self.events.take_into(out);
    }

    fn has_events(&self) -> bool {
        !self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_net::{World, WorldConfig};

    fn world(n: usize, cfg: ProtocolConfig) -> World<RingNode> {
        World::from_nodes(
            (0..n).map(|_| RingNode::new(cfg)).collect(),
            WorldConfig::default(),
        )
    }

    fn drain_all(w: &mut World<RingNode>) -> Vec<TokenEvent> {
        let mut out = Vec::new();
        for i in 0..w.len() {
            out.extend(w.node_mut(NodeId::new(i as u32)).take_events());
        }
        out.sort_by_key(|e| e.at());
        out
    }

    #[test]
    fn token_circulates_forever() {
        let mut w = world(4, ProtocolConfig::default());
        w.run_until(SimTime::from_ticks(100));
        // 100 ticks at unit delay: ~100 token hops.
        let sends: u64 = (0..4)
            .map(|i| w.node(NodeId::new(i)).token_sends())
            .sum();
        assert!((95..=101).contains(&sends), "sends = {sends}");
    }

    #[test]
    fn single_request_is_granted_within_n_delays() {
        let mut w = world(8, ProtocolConfig::default());
        w.schedule_external(SimTime::from_ticks(10), NodeId::new(5), Want::new(42));
        w.run_until(SimTime::from_ticks(30));
        let events = drain_all(&mut w);
        let granted_at = events
            .iter()
            .find_map(|e| match e {
                TokenEvent::Granted { at, .. } => Some(*at),
                _ => None,
            })
            .expect("request should be granted");
        assert!(granted_at.since(SimTime::from_ticks(10)) <= 8);
        assert_eq!(w.node(NodeId::new(5)).grants(), 1);
    }

    #[test]
    fn broadcast_reaches_every_node_within_a_round() {
        let mut w = world(5, ProtocolConfig::default());
        w.schedule_external(SimTime::ZERO, NodeId::new(2), Want::new(7));
        w.run_until(SimTime::from_ticks(20));
        for (_, node) in w.nodes() {
            assert_eq!(node.order().applied_seq(), 1, "all nodes deliver");
        }
    }

    #[test]
    fn histories_are_prefixes_of_each_other() {
        let mut w = world(6, ProtocolConfig::default());
        for t in 0..30 {
            w.schedule_external(SimTime::from_ticks(t * 3), NodeId::new((t % 6) as u32), Want::new(t));
        }
        w.run_until(SimTime::from_ticks(300));
        let nodes: Vec<_> = (0..6).map(|i| w.node(NodeId::new(i))).collect();
        for a in &nodes {
            for b in &nodes {
                assert!(
                    a.order().is_prefix_of(b.order()) || b.order().is_prefix_of(a.order()),
                    "prefix property violated"
                );
            }
        }
        assert_eq!(nodes.iter().map(|n| n.grants()).sum::<u64>(), 30);
    }

    #[test]
    fn service_time_holds_the_token() {
        let cfg = ProtocolConfig::default().with_service_ticks(5);
        let mut w = world(3, cfg);
        w.schedule_external(SimTime::ZERO, NodeId::new(1), Want::new(1));
        w.run_until(SimTime::from_ticks(3));
        let held = w.node(NodeId::new(1)).holds_token();
        assert!(held, "node 1 should be serving");
        w.run_until(SimTime::from_ticks(20));
        assert!(!w.node(NodeId::new(1)).holds_token());
        let events = drain_all(&mut w);
        let granted = events.iter().find_map(|e| match e {
            TokenEvent::Granted { at, .. } => Some(*at),
            _ => None,
        });
        let released = events.iter().find_map(|e| match e {
            TokenEvent::Released { at, .. } => Some(*at),
            _ => None,
        });
        assert_eq!(released.unwrap().since(granted.unwrap()), 5);
    }

    #[test]
    fn adaptive_speed_slows_idle_token() {
        let cfg = ProtocolConfig::default()
            .with_adaptive_speed(true)
            .with_max_idle_pass_ticks(8);
        let mut w = world(4, cfg);
        w.run_until(SimTime::from_ticks(400));
        let idle_sends: u64 = (0..4).map(|i| w.node(NodeId::new(i)).token_sends()).sum();
        let mut w2 = world(4, ProtocolConfig::default());
        w2.run_until(SimTime::from_ticks(400));
        let eager_sends: u64 = (0..4).map(|i| w2.node(NodeId::new(i)).token_sends()).sum();
        assert!(
            idle_sends * 2 < eager_sends,
            "adaptive speed should cut idle token traffic: {idle_sends} vs {eager_sends}"
        );
    }

    #[test]
    fn adaptive_speed_serves_mid_hold() {
        let cfg = ProtocolConfig::default()
            .with_adaptive_speed(true)
            .with_max_idle_pass_ticks(1000);
        let mut w = world(2, cfg);
        // Let the token go idle and slow down, then request at the holder.
        w.run_until(SimTime::from_ticks(100));
        let holder = (0..2)
            .map(NodeId::new)
            .find(|id| w.node(*id).holds_token());
        if let Some(holder) = holder {
            let t = w.now();
            w.schedule_external(t, holder, Want::new(9));
            w.run_for(2);
            assert_eq!(w.node(holder).grants(), 1, "served during the idle hold");
        }
    }

    #[test]
    fn crash_of_holder_loses_token_then_regeneration_restores_liveness() {
        let cfg = ProtocolConfig::default()
            .with_service_ticks(6)
            .with_regeneration(20);
        let mut w = world(4, cfg);
        // Node 2 requests at t=0; the token reaches it at t=2 and it serves
        // until t=8. Crash it mid-service: the token dies with it.
        w.schedule_external(SimTime::ZERO, NodeId::new(2), Want::new(1));
        w.run_until(SimTime::from_ticks(4));
        let holder = NodeId::new(2);
        assert!(w.node(holder).holds_token(), "node 2 should be serving");
        let t = w.now();
        w.schedule_crash(t, holder);
        // A surviving node requests.
        let requester = NodeId::new(3);
        w.schedule_external(t + 1, requester, Want::new(5));
        w.run_until(SimTime::from_ticks(400));
        let events = drain_all(&mut w);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TokenEvent::Regenerated { .. })),
            "token should be regenerated"
        );
        assert_eq!(w.node(requester).grants(), 1, "request eventually granted");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut w = world(5, ProtocolConfig::default());
            for t in 0..20 {
                w.schedule_external(SimTime::from_ticks(t * 2), NodeId::new((t % 5) as u32), Want::new(t));
            }
            w.run_until(SimTime::from_ticks(200));
            drain_all(&mut w)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn duplicated_token_frames_are_discarded_not_double_served() {
        use atp_net::LinkFaults;
        // Every frame is delivered twice: the watermark must swallow the
        // copies, possession must never fork, and service stays exact.
        let mut w: World<RingNode> = World::from_nodes(
            (0..4).map(|_| RingNode::new(ProtocolConfig::default())).collect(),
            WorldConfig::default().link_faults(LinkFaults::new().duplication(1.0)),
        );
        for t in 0..10 {
            w.schedule_external(SimTime::from_ticks(t * 5), NodeId::new((t % 4) as u32), Want::new(t));
        }
        w.run_until(SimTime::from_ticks(200));
        let grants: u64 = (0..4).map(|i| w.node(NodeId::new(i)).grants()).sum();
        assert_eq!(grants, 10, "each request granted exactly once");
        let discarded: u64 = (0..4)
            .map(|i| w.node(NodeId::new(i)).duplicate_tokens_discarded())
            .sum();
        assert!(discarded > 0, "duplicates must be counted, got none");
        let holders = (0..4)
            .filter(|i| w.node(NodeId::new(*i)).holds_token())
            .count();
        assert!(holders <= 1, "possession forked under duplication: {holders}");
    }

    #[test]
    fn lost_token_recovered_by_retransmit_not_regeneration() {
        use atp_net::LinkFaults;
        // 10% token loss, acks on, regeneration OFF: only the ack/retransmit
        // machinery can keep the ring alive. All requests still served.
        let cfg = ProtocolConfig::default().with_token_acks(true);
        let mut w: World<RingNode> = World::from_nodes(
            (0..4).map(|_| RingNode::new(cfg)).collect(),
            WorldConfig::default().link_faults(LinkFaults::new().loss(0.10)),
        );
        for t in 0..8 {
            w.schedule_external(SimTime::from_ticks(t * 20), NodeId::new((t % 4) as u32), Want::new(t));
        }
        w.run_until(SimTime::from_ticks(1200));
        let grants: u64 = (0..4).map(|i| w.node(NodeId::new(i)).grants()).sum();
        assert_eq!(grants, 8, "retransmits must recover every lost handoff");
        let retransmits: u64 = (0..4)
            .map(|i| w.node(NodeId::new(i)).token_retransmits())
            .sum();
        assert!(retransmits > 0, "loss at 10% must trigger retransmits");
        let events = drain_all(&mut w);
        assert!(
            !events.iter().any(|e| matches!(e, TokenEvent::Regenerated { .. })),
            "recovery must come from retransmission, not regeneration"
        );
    }

    #[test]
    fn duplicated_mint_request_does_not_mint_two_tokens_of_same_generation() {
        use atp_net::LinkFaults;
        // Regression (satellite 3): with every message duplicated, the
        // `Please` asking the target to mint a regenerated token arrives
        // twice. Minting is keyed on generation and must stay idempotent —
        // otherwise two same-generation tokens enter circulation and the
        // watermark cannot tell them apart.
        let cfg = ProtocolConfig::default()
            .with_service_ticks(6)
            .with_regeneration(20);
        let mut w: World<RingNode> = World::from_nodes(
            (0..4).map(|_| RingNode::new(cfg)).collect(),
            WorldConfig::default().link_faults(LinkFaults::new().duplication(1.0)),
        );
        w.schedule_external(SimTime::ZERO, NodeId::new(2), Want::new(1));
        w.run_until(SimTime::from_ticks(4));
        assert!(w.node(NodeId::new(2)).holds_token(), "node 2 serving");
        let t = w.now();
        w.schedule_crash(t, NodeId::new(2));
        w.schedule_external(t + 1, NodeId::new(3), Want::new(5));
        w.run_until(SimTime::from_ticks(400));
        let events = drain_all(&mut w);
        let mut minted_gens: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                TokenEvent::Regenerated { generation, .. } => Some(*generation),
                _ => None,
            })
            .collect();
        assert!(!minted_gens.is_empty(), "regeneration must have happened");
        let total = minted_gens.len();
        minted_gens.sort_unstable();
        minted_gens.dedup();
        assert_eq!(
            minted_gens.len(),
            total,
            "a generation was minted more than once"
        );
        assert_eq!(w.node(NodeId::new(3)).grants(), 1, "request served");
    }

    #[test]
    fn token_acks_off_is_byte_identical_to_seed_behavior() {
        // The ack machinery must be pay-for-play: with the default config the
        // message trace is exactly the pre-ack protocol's.
        let mut w = world(4, ProtocolConfig::default());
        w.run_until(SimTime::from_ticks(100));
        let sends: u64 = (0..4).map(|i| w.node(NodeId::new(i)).token_sends()).sum();
        assert!((95..=101).contains(&sends));
        assert_eq!(
            (0..4).map(|i| w.node(NodeId::new(i)).token_retransmits()).sum::<u64>(),
            0
        );
    }
}
