//! Observable protocol events and the external stimulus type.
//!
//! Protocol nodes are passive state machines inside a transport; the harness
//! (metrics, tests, applications) observes them by draining a per-node event
//! buffer after each callback. Events are the *only* channel through which
//! experiments learn about grants, so the responsiveness metric of the
//! paper's Definition 3 is computed purely from this stream.

use atp_net::{NodeId, SimTime};

use crate::types::{LogEntry, RequestId};

/// What an external stimulus asks of the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WantKind {
    /// Become ready: acquire the token and broadcast the payload.
    #[default]
    Acquire,
    /// Gracefully leave the group (Section 5's dynamic-membership
    /// extension): announce departure so the rotation routes around this
    /// node without a token loss.
    Leave,
    /// Rejoin the group after a graceful leave.
    Rejoin,
}

/// External stimulus injected by a workload: by default the node becomes
/// *ready* (it now "requires the token", in the paper's terms); the other
/// kinds drive dynamic membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Want {
    /// The datum the node wishes to broadcast once it holds the token.
    pub payload: u64,
    /// What is being asked.
    pub kind: WantKind,
}

impl Want {
    /// A token request carrying `payload`.
    pub fn new(payload: u64) -> Self {
        Want {
            payload,
            kind: WantKind::Acquire,
        }
    }

    /// A graceful-leave announcement.
    pub fn leave() -> Self {
        Want {
            payload: 0,
            kind: WantKind::Leave,
        }
    }

    /// A rejoin announcement.
    pub fn rejoin() -> Self {
        Want {
            payload: 0,
            kind: WantKind::Rejoin,
        }
    }
}

/// Something observable that happened at one protocol node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenEvent {
    /// The node became ready (rule 1 fired): a new request exists.
    Requested {
        /// The new request.
        req: RequestId,
        /// When the node became ready.
        at: SimTime,
    },
    /// The node received the token while ready; the request is satisfied.
    Granted {
        /// The satisfied request.
        req: RequestId,
        /// Grant time.
        at: SimTime,
    },
    /// The node finished using the token (its datum was appended to `H`).
    Released {
        /// The request whose service completed.
        req: RequestId,
        /// Release time.
        at: SimTime,
    },
    /// The node applied a globally ordered broadcast entry to its local
    /// prefix history `P|(x, H_x)`.
    Delivered {
        /// The applied entry.
        entry: LogEntry,
        /// Delivery time.
        at: SimTime,
    },
    /// The node regenerated a lost token (Section 5 failure handling).
    Regenerated {
        /// The node that minted the replacement token.
        by: NodeId,
        /// The new token generation number.
        generation: u32,
        /// When regeneration happened.
        at: SimTime,
    },
    /// The node discarded a stale token from a superseded generation.
    StaleTokenDiscarded {
        /// The stale generation.
        generation: u32,
        /// When it was discarded.
        at: SimTime,
    },
    /// A search message working on behalf of `req` left this node: a
    /// Gimme send or relay, or a directed probe/reply hop.
    ///
    /// One event per network send, so the per-request count is exactly
    /// the number of times the request was forwarded — the quantity
    /// Lemma 6 bounds by O(log N) for the binary-search strategy.
    SearchForwarded {
        /// The request being searched for.
        req: RequestId,
        /// Encoded wire size of the forwarded message, in bytes.
        bytes: u64,
        /// When the hop was sent.
        at: SimTime,
    },
    /// A token frame was shipped toward the requester to serve `req`.
    TokenDispatched {
        /// The request the token is travelling to serve.
        req: RequestId,
        /// Encoded wire size of the token frame, in bytes.
        bytes: u64,
        /// When the frame was sent.
        at: SimTime,
    },
}

impl TokenEvent {
    /// When the event occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            TokenEvent::Requested { at, .. }
            | TokenEvent::Granted { at, .. }
            | TokenEvent::Released { at, .. }
            | TokenEvent::Delivered { at, .. }
            | TokenEvent::Regenerated { at, .. }
            | TokenEvent::StaleTokenDiscarded { at, .. }
            | TokenEvent::SearchForwarded { at, .. }
            | TokenEvent::TokenDispatched { at, .. } => at,
        }
    }
}

/// Implemented by every protocol node: exposes the buffered [`TokenEvent`]s.
///
/// The transport-side driver drains this after each dispatched callback.
pub trait EventSource {
    /// Removes and returns all buffered events, oldest first.
    fn take_events(&mut self) -> Vec<TokenEvent>;

    /// Drains all buffered events into `out`, oldest first, preserving
    /// `out`'s existing contents and capacity.
    ///
    /// This is the hot-path variant: a driver dispatching millions of
    /// events reuses one buffer instead of materializing a fresh `Vec`
    /// per callback. Implementations backed by an internal buffer should
    /// override the default (which round-trips through [`take_events`])
    /// to move elements directly.
    fn take_events_into(&mut self, out: &mut Vec<TokenEvent>) {
        out.append(&mut self.take_events());
    }

    /// Returns `true` if events are waiting.
    fn has_events(&self) -> bool;
}

/// A simple push buffer used inside node implementations.
#[derive(Debug, Clone, Default)]
pub(crate) struct EventBuf {
    events: Vec<TokenEvent>,
}

impl EventBuf {
    pub fn push(&mut self, ev: TokenEvent) {
        self.events.push(ev);
    }

    pub fn take(&mut self) -> Vec<TokenEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves all buffered events into `out`, retaining this buffer's
    /// capacity for the next callback.
    pub fn take_into(&mut self, out: &mut Vec<TokenEvent>) {
        out.append(&mut self.events);
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_times_are_accessible() {
        let at = SimTime::from_ticks(9);
        let req = RequestId::new(NodeId::new(1), 1);
        let events = [
            TokenEvent::Requested { req, at },
            TokenEvent::Granted { req, at },
            TokenEvent::Released { req, at },
            TokenEvent::Regenerated {
                by: NodeId::new(0),
                generation: 2,
                at,
            },
            TokenEvent::StaleTokenDiscarded { generation: 1, at },
        ];
        for e in events {
            assert_eq!(e.at(), at);
        }
    }

    #[test]
    fn buffer_drains_in_order() {
        let mut buf = EventBuf::default();
        let req = RequestId::new(NodeId::new(0), 1);
        buf.push(TokenEvent::Requested {
            req,
            at: SimTime::ZERO,
        });
        buf.push(TokenEvent::Granted {
            req,
            at: SimTime::from_ticks(1),
        });
        assert!(!buf.is_empty());
        let drained = buf.take();
        assert_eq!(drained.len(), 2);
        assert!(buf.is_empty());
        assert!(matches!(drained[0], TokenEvent::Requested { .. }));
    }

    #[test]
    fn take_into_appends_and_keeps_capacity() {
        let mut buf = EventBuf::default();
        let req = RequestId::new(NodeId::new(0), 1);
        for t in 0..3 {
            buf.push(TokenEvent::Requested {
                req,
                at: SimTime::from_ticks(t),
            });
        }
        let cap_before = buf.events.capacity();
        let mut out = vec![TokenEvent::StaleTokenDiscarded {
            generation: 0,
            at: SimTime::ZERO,
        }];
        buf.take_into(&mut out);
        assert_eq!(out.len(), 4, "existing contents are preserved");
        assert!(buf.is_empty());
        assert_eq!(buf.events.capacity(), cap_before, "buffer keeps its capacity");
        buf.push(TokenEvent::Requested {
            req,
            at: SimTime::from_ticks(9),
        });
        assert!(!buf.is_empty(), "buffer is reusable after draining");
    }
}
