//! Reliable token handoff over a hostile link layer.
//!
//! The paper assumes token-bearing messages are delivered reliably; the
//! link-fault models in `atp-net` deliberately break that assumption — token
//! frames can be lost, duplicated or delayed like any other message. This
//! module supplies the two per-node mechanisms the protocols share to cope:
//!
//! * an **ack/retransmit state machine** for token-bearing sends: when
//!   [`ProtocolConfig::token_acks`](crate::ProtocolConfig::token_acks) is on,
//!   every token send is tracked until a matching
//!   [`RegenMsg::TokenAck`](crate::RegenMsg::TokenAck) arrives, and is
//!   retransmitted on a deterministic exponential-backoff timer a bounded
//!   number of times;
//! * an **idempotent duplicate filter**: a `(generation, transfer_seq)`
//!   watermark that discards redelivered or retransmitted frames instead of
//!   forking possession.
//!
//! Both live in [`Handoff`], one instance embedded in each protocol node.

use atp_net::NodeId;

/// Low byte of the retransmit timer kind; the remaining bits encode the
/// attempt (bits 8..16) and transfer sequence (bits 16..64) so a stale timer
/// can be recognized and ignored.
pub const TIMER_RETRANSMIT_TAG: u64 = 5;

/// Encodes a retransmit timer kind for `(transfer_seq, attempt)`.
pub fn retransmit_timer_kind(transfer_seq: u64, attempt: u32) -> u64 {
    TIMER_RETRANSMIT_TAG | ((attempt as u64 & 0xff) << 8) | (transfer_seq << 16)
}

/// Decodes a timer kind produced by [`retransmit_timer_kind`]; returns
/// `(transfer_seq, attempt)`, or `None` if the kind is not a retransmit
/// timer.
pub fn decode_retransmit_timer(kind: u64) -> Option<(u64, u32)> {
    (kind & 0xff == TIMER_RETRANSMIT_TAG).then(|| (kind >> 16, ((kind >> 8) & 0xff) as u32))
}

/// One unacknowledged token-bearing send awaiting its ack.
#[derive(Debug, Clone)]
pub struct PendingTransfer<M> {
    /// The receiver the frame was sent to.
    pub to: NodeId,
    /// The exact message to resend on timeout.
    pub msg: M,
    /// Generation of the frame inside `msg`.
    pub generation: u32,
    /// Transfer sequence of the frame inside `msg`.
    pub transfer_seq: u64,
    /// Retransmissions performed so far (0 = original send only).
    pub attempt: u32,
}

/// Per-node handoff state: the duplicate-suppression watermark, the single
/// in-flight unacked transfer, and the robustness counters.
///
/// A single pending slot suffices: a node regains possession (and thus sends
/// again) only after its previous send was received, so at most one transfer
/// of its own can be unacked at a time; a newer send simply supersedes the
/// older pending entry.
#[derive(Debug, Default)]
pub struct Handoff<M> {
    pending: Option<PendingTransfer<M>>,
    /// Highest `(generation, transfer_seq)` accepted or sent.
    watermark: Option<(u32, u64)>,
    /// Token frames discarded as duplicates (watermark or double-possession).
    pub duplicates_discarded: u64,
    /// Token frames resent after an ack timeout.
    pub retransmits: u64,
}

impl<M> Handoff<M> {
    /// Fresh state: nothing pending, empty watermark.
    pub fn new() -> Self {
        Handoff {
            pending: None,
            watermark: None,
            duplicates_discarded: 0,
            retransmits: 0,
        }
    }

    /// Whether a frame stamped `(generation, transfer_seq)` is fresh. Fresh
    /// frames advance the watermark and return `true`; stale or duplicate
    /// frames bump [`Handoff::duplicates_discarded`] and return `false`.
    pub fn accept(&mut self, generation: u32, transfer_seq: u64) -> bool {
        let stamp = (generation, transfer_seq);
        if self.watermark.is_some_and(|w| stamp <= w) {
            self.duplicates_discarded += 1;
            return false;
        }
        self.watermark = Some(stamp);
        true
    }

    /// Records an outgoing transfer in the watermark so late duplicates of
    /// frames we already passed on cannot re-enter.
    pub fn observe_send(&mut self, generation: u32, transfer_seq: u64) {
        let stamp = (generation, transfer_seq);
        if self.watermark.is_none_or(|w| stamp > w) {
            self.watermark = Some(stamp);
        }
    }

    /// Counts a duplicate caught outside the watermark (double possession).
    pub fn count_duplicate(&mut self) {
        self.duplicates_discarded += 1;
    }

    /// Tracks an outgoing token-bearing send for ack/retransmit.
    pub fn track(&mut self, to: NodeId, msg: M, generation: u32, transfer_seq: u64) {
        self.pending = Some(PendingTransfer {
            to,
            msg,
            generation,
            transfer_seq,
            attempt: 0,
        });
    }

    /// Handles an incoming ack; clears the pending slot if it matches.
    pub fn acked(&mut self, generation: u32, transfer_seq: u64) {
        if self
            .pending
            .as_ref()
            .is_some_and(|p| p.generation == generation && p.transfer_seq == transfer_seq)
        {
            self.pending = None;
        }
    }

    /// Whether a retransmit timer `(transfer_seq, attempt)` matches the
    /// current pending transfer (stale timers from superseded sends do not).
    pub fn timer_due(&self, transfer_seq: u64, attempt: u32) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|p| p.transfer_seq == transfer_seq && p.attempt == attempt)
    }

    /// Consumes one retransmit attempt: bumps the attempt counter and the
    /// retransmit stat, and returns `(to, msg, transfer_seq, new_attempt)`
    /// for the resend. Returns `None` (dropping the pending slot) once
    /// `max_retries` attempts are exhausted — at that point regeneration is
    /// the fallback.
    pub fn next_attempt(&mut self, max_retries: u32) -> Option<(NodeId, M, u64, u32)>
    where
        M: Clone,
    {
        let p = self.pending.as_mut()?;
        if p.attempt >= max_retries {
            self.pending = None;
            return None;
        }
        p.attempt += 1;
        self.retransmits += 1;
        Some((p.to, p.msg.clone(), p.transfer_seq, p.attempt))
    }

    /// The current duplicate-suppression watermark, if any frame was ever
    /// accepted or sent. Checkpointed so a restarted node cannot be fooled
    /// by replays of pre-crash transfers.
    pub fn watermark(&self) -> Option<(u32, u64)> {
        self.watermark
    }

    /// Restores a checkpointed watermark (only ever moves it forward).
    pub fn restore_watermark(&mut self, watermark: Option<(u32, u64)>) {
        if watermark > self.watermark {
            self.watermark = watermark;
        }
    }

    /// Drops any pending transfer (crash recovery: the frame's fate is
    /// unknowable and a stale retransmit could resurrect a superseded token).
    pub fn clear_pending(&mut self) {
        self.pending = None;
    }

    /// The in-flight unacked transfer, if any.
    pub fn pending(&self) -> Option<&PendingTransfer<M>> {
        self.pending.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_accepts_fresh_rejects_replayed() {
        let mut h: Handoff<u32> = Handoff::new();
        assert!(h.accept(0, 1));
        assert!(!h.accept(0, 1), "exact duplicate");
        assert!(!h.accept(0, 0), "older transfer");
        assert!(h.accept(0, 2));
        assert!(h.accept(1, 0), "newer generation always wins");
        assert!(!h.accept(0, 99), "older generation loses");
        assert_eq!(h.duplicates_discarded, 3);
    }

    #[test]
    fn observe_send_blocks_late_duplicates() {
        let mut h: Handoff<u32> = Handoff::new();
        assert!(h.accept(0, 3));
        h.observe_send(0, 4);
        assert!(!h.accept(0, 4), "duplicate of our own forwarded frame");
        assert!(h.accept(0, 5));
    }

    #[test]
    fn ack_clears_matching_pending_only() {
        let mut h: Handoff<u32> = Handoff::new();
        h.track(NodeId::new(1), 7, 0, 4);
        h.acked(0, 3);
        assert!(h.pending().is_some(), "mismatched ack ignored");
        h.acked(0, 4);
        assert!(h.pending().is_none());
    }

    #[test]
    fn retransmit_attempts_are_bounded() {
        let mut h: Handoff<u32> = Handoff::new();
        h.track(NodeId::new(2), 9, 1, 8);
        assert!(h.timer_due(8, 0));
        assert!(!h.timer_due(8, 1), "future attempt not due yet");
        assert!(!h.timer_due(7, 0), "stale transfer");
        let (to, msg, tseq, attempt) = h.next_attempt(2).unwrap();
        assert_eq!((to, msg, tseq, attempt), (NodeId::new(2), 9, 8, 1));
        assert!(h.timer_due(8, 1));
        assert!(h.next_attempt(2).is_some());
        assert!(h.next_attempt(2).is_none(), "retries exhausted");
        assert!(h.pending().is_none(), "gave up: slot cleared");
        assert_eq!(h.retransmits, 2);
    }

    #[test]
    fn timer_kind_roundtrips() {
        for (tseq, attempt) in [(0, 0), (1, 0), (7, 3), (1 << 40, 255)] {
            let kind = retransmit_timer_kind(tseq, attempt);
            assert_eq!(decode_retransmit_timer(kind), Some((tseq, attempt)));
        }
        assert_eq!(decode_retransmit_timer(1), None);
        assert_eq!(decode_retransmit_timer(4), None);
    }
}
