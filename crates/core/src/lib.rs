//! # atp-core — executable adaptive token-passing protocols
//!
//! Executable realizations of the protocol family from *"Developing and
//! Refining an Adaptive Token-Passing Strategy"* (Englert, Rudolph,
//! Shvartsman, 2001). Where the sibling crate `atp-spec` keeps the paper's
//! Term-Rewriting-System specifications verbatim for machine-checked safety,
//! this crate provides the deployable protocols — bounded state, explicit
//! messages, failure handling — that the experiments in `atp-sim` measure.
//!
//! ## Protocols
//!
//! | Type | Paper system | Responsiveness |
//! |---|---|---|
//! | [`RingNode`] | Message-Passing + rule 3′ | O(N) (Lemma 4) |
//! | [`SearchNode`] | Search, cyclic restriction | O(N) (Lemma 5) |
//! | [`BinaryNode`] | BinarySearch | O(log N) (Theorem 2) |
//! | [`NaimiNode`] | — (Naimi–Tréhel competitor) | O(log N) average (Lavault) |
//!
//! All of them expose the same interface: they implement
//! [`atp_net::Node`] (message-driven state machines), accept [`Want`]
//! stimuli ("this node now requires the token"), and report observable
//! behaviour through [`EventSource`].
//!
//! ## Quickstart
//!
//! ```rust
//! use atp_core::{BinaryNode, ProtocolConfig, Want, EventSource, TokenEvent};
//! use atp_net::{NodeId, SimTime, World, WorldConfig};
//!
//! // 16 nodes running System BinarySearch.
//! let cfg = ProtocolConfig::default();
//! let mut world = World::from_nodes(
//!     (0..16).map(|_| BinaryNode::new(cfg)).collect(),
//!     WorldConfig::default(),
//! );
//! // Node 11 wants the token at t=5.
//! world.schedule_external(SimTime::from_ticks(5), NodeId::new(11), Want::new(42));
//! world.run_until(SimTime::from_ticks(64));
//! let events = world.node_mut(NodeId::new(11)).take_events();
//! assert!(events.iter().any(|e| matches!(e, TokenEvent::Granted { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod checkpoint;
mod codec;
mod config;
mod event;
mod handoff;
mod naimi;
mod order;
mod regen;
mod ring;
mod runtime;
mod search;
mod shard;
mod service;
mod token;
mod types;
mod wire;

pub use binary::{BinaryMsg, BinaryNode, Gimme, TokenMode};
pub use checkpoint::{Checkpoint, CKPT_BINARY, CKPT_NAIMI, CKPT_RING, CKPT_SEARCH};
pub use codec::{
    decode_binary_msg, decode_naimi_msg, decode_ring_msg, decode_search_msg, decode_shard_frame,
    encode_binary_msg, encode_naimi_msg, encode_ring_msg, encode_search_msg, encode_shard_frame,
    encoded_len, known_binary_tags, known_naimi_tags, known_ring_tags, known_search_tags,
    known_shard_tags, naimi_encoded_len, ring_encoded_len, search_encoded_len,
    shard_frame_encoded_len, CodecError,
};
pub use config::{ProtocolConfig, SearchMode, TrapCleanup};
pub use event::{EventSource, TokenEvent, Want};
pub use handoff::{Handoff, PendingTransfer};
pub use naimi::{NaimiMsg, NaimiNode};
pub use order::{HistoryDigest, OrderState};
pub use regen::{gen_epoch, gen_minter, make_gen, RegenEngine, RegenMsg, RegenReply, RegenVerdict};
pub use ring::{RingMsg, RingNode};
pub use runtime::{
    Cluster, ClusterConfig, ClusterHandle, ShardedCluster, ShardedClusterConfig,
};
pub use search::{SearchMsg, SearchNode};
pub use shard::{Ring as ShardRing, RingPosition, ShardId, ShardMap, ShardMove, DEFAULT_PROBES};
pub use service::{Delivery, Lease, ServiceError, TokenService};
pub use token::TokenFrame;
pub use types::{Grant, LogEntry, RequestId, VisitStamp};
pub use wire::WireProtocol;
