//! Simulation-relation checking between refinement levels.
//!
//! The paper's refinement arguments all have the same shape: map each
//! concrete state to an abstract state and show every concrete transition
//! corresponds to an abstract transition (or to no transition at all — a
//! *stutter*, e.g. the message-transfer rule whose effect is invisible
//! abstractly). Rule 8 of System BinarySearch corresponds to *two* abstract
//! steps (receive-then-broadcast), so the checker accepts abstract paths up
//! to a configurable length.

use std::collections::{HashMap, HashSet};

use atp_trs::{Graph, Term, Trs};

/// A failed simulation check.
#[derive(Debug, Clone)]
pub struct RefinementViolation {
    /// The concrete source state.
    pub concrete_from: Term,
    /// The concrete target state.
    pub concrete_to: Term,
    /// Its abstraction, from which no short path reached `abstract_to`.
    pub abstract_from: Term,
    /// The abstraction of the target.
    pub abstract_to: Term,
}

impl std::fmt::Display for RefinementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no abstract path {} →* {} (witnessing {} → {})",
            self.abstract_from, self.abstract_to, self.concrete_from, self.concrete_to
        )
    }
}

/// Checks that `map` is a (stuttering) simulation from the explored concrete
/// graph into `abstract_trs`: for every concrete edge `s → s'`, either
/// `map(s) == map(s')` or `map(s')` is reachable from `map(s)` in at most
/// `max_path` abstract steps.
///
/// # Errors
///
/// Returns the first violating edge.
pub fn check_refinement(
    concrete: &Graph,
    abstract_trs: &Trs,
    map: impl Fn(&Term) -> Term,
    max_path: usize,
) -> Result<(), Box<RefinementViolation>> {
    // Many concrete edges map to the same abstract pair: memoize.
    let mut memo: HashMap<(Term, Term), bool> = HashMap::new();
    for &(from, _, to) in concrete.edges() {
        let c_from = &concrete.states()[from];
        let c_to = &concrete.states()[to];
        let a_from = map(c_from);
        let a_to = map(c_to);
        if a_from == a_to {
            continue; // stutter
        }
        let ok = *memo
            .entry((a_from.clone(), a_to.clone()))
            .or_insert_with(|| reachable_within(abstract_trs, &a_from, &a_to, max_path));
        if !ok {
            return Err(Box::new(RefinementViolation {
                concrete_from: c_from.clone(),
                concrete_to: c_to.clone(),
                abstract_from: a_from,
                abstract_to: a_to,
            }));
        }
    }
    Ok(())
}

/// Bounded-depth reachability in the abstract system.
fn reachable_within(trs: &Trs, from: &Term, to: &Term, max_path: usize) -> bool {
    let mut frontier = vec![from.clone()];
    let mut seen: HashSet<Term> = frontier.iter().cloned().collect();
    for _ in 0..max_path {
        let mut next = Vec::new();
        for state in frontier {
            for (_, succ) in trs.successors(&state) {
                if succ == *to {
                    return true;
                }
                if seen.insert(succ.clone()) {
                    next.push(succ);
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_trs::{Explorer, Pat, Rhs, Rule};

    /// Concrete: (k, noise) — inc increments k, flip toggles noise.
    /// Abstract: (k) — inc only. Map drops the noise bit.
    fn concrete_trs() -> Trs {
        let inc = Rule::new(
            "inc",
            Pat::tuple(vec![Pat::var("k"), Pat::var("b")]),
            Rhs::tuple(vec![
                Rhs::apply("k+1", |s| Term::int(s["k"].as_int().unwrap() + 1)),
                Rhs::var("b"),
            ]),
        )
        .with_guard(|s| s["k"].as_int().unwrap() < 3);
        let flip = Rule::new(
            "flip",
            Pat::tuple(vec![Pat::var("k"), Pat::var("b")]),
            Rhs::tuple(vec![
                Rhs::var("k"),
                Rhs::apply("!b", |s| Term::int(1 - s["b"].as_int().unwrap())),
            ]),
        );
        Trs::new(vec![inc, flip])
    }

    fn abstract_trs(step: i64) -> Trs {
        Trs::new(vec![Rule::new(
            "inc",
            Pat::tuple(vec![Pat::var("k")]),
            Rhs::tuple(vec![Rhs::apply("k+step", move |s| {
                Term::int(s["k"].as_int().unwrap() + step)
            })]),
        )
        .with_guard(|s| s["k"].as_int().unwrap() < 3)])
    }

    fn project(state: &Term) -> Term {
        Term::tuple(vec![state.as_tuple().unwrap()[0].clone()])
    }

    #[test]
    fn valid_refinement_passes() {
        let concrete = Explorer::default().explore(
            &concrete_trs(),
            Term::tuple(vec![Term::int(0), Term::int(0)]),
        );
        assert!(check_refinement(&concrete, &abstract_trs(1), project, 1).is_ok());
    }

    #[test]
    fn mismatched_abstraction_is_caught() {
        let concrete = Explorer::default().explore(
            &concrete_trs(),
            Term::tuple(vec![Term::int(0), Term::int(0)]),
        );
        // Abstract steps by 2: the concrete inc-by-1 has no counterpart.
        let err = check_refinement(&concrete, &abstract_trs(2), project, 1).unwrap_err();
        assert!(err.to_string().contains("no abstract path"));
    }

    #[test]
    fn longer_paths_can_be_required() {
        // Abstract inc-by-1 reaches k+2 in two steps: a concrete system that
        // jumps by 2 refines it only with max_path >= 2.
        let jump = Trs::new(vec![Rule::new(
            "jump",
            Pat::tuple(vec![Pat::var("k"), Pat::var("b")]),
            Rhs::tuple(vec![
                Rhs::apply("k+2", |s| Term::int(s["k"].as_int().unwrap() + 2)),
                Rhs::var("b"),
            ]),
        )
        .with_guard(|s| s["k"].as_int().unwrap() < 2)]);
        let concrete =
            Explorer::default().explore(&jump, Term::tuple(vec![Term::int(0), Term::int(0)]));
        assert!(check_refinement(&concrete, &abstract_trs(1), project, 1).is_err());
        assert!(check_refinement(&concrete, &abstract_trs(1), project, 2).is_ok());
    }
}
