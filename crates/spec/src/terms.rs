//! Shared term encodings for the protocol specifications.
//!
//! Conventions (mirroring Figure 1 of the paper):
//!
//! * node identifiers are `Int(0..n)`; `x⁺¹` wraps at `n`;
//! * a datum `new_x` is `("d", x, k)` — node `x`'s `k`-th broadcast. Data
//!   are unique, so histories can be compared syntactically;
//! * a `Q` entry is `(x, d_x, g_x)` where `d_x` is the pending-data sequence
//!   (`φ_x` = empty `Seq`) and `g_x` counts lifetime broadcasts — the
//!   round-counter bounding instrument (Section 4.4);
//! * a `P` entry is `(x, H_x)` with `H_x` the local prefix history;
//! * `T` is `Int(holder)` or the distinguished symbol `⊥` (`"bot"`);
//! * an `I`/`O` entry is `(a, (b, m))` — in `O`: `a` sends `m` to `b`; in
//!   `I`: `a` received `m` from `b` (the paper's convention, maintained by
//!   the transfer rule).

use atp_trs::{Pat, Rhs, Term};

/// The `k`-th datum of node `x`.
pub fn datum(x: i64, k: i64) -> Term {
    Term::tuple(vec![Term::sym("d"), Term::int(x), Term::int(k)])
}

/// A `Q` entry `(x, d_x, g_x)`.
pub fn qpair(x: i64, pending: Term, generated: i64) -> Term {
    Term::tuple(vec![Term::int(x), pending, Term::int(generated)])
}

/// The initial `Q`: every node idle with nothing generated.
pub fn q_init(n: usize) -> Term {
    Term::bag(
        (0..n as i64)
            .map(|x| qpair(x, Term::empty_seq(), 0))
            .collect(),
    )
}

/// A `P` entry `(x, H_x)`.
pub fn ppair(x: i64, history: Term) -> Term {
    Term::tuple(vec![Term::int(x), history])
}

/// The initial `P`: every local history empty.
pub fn p_init(n: usize) -> Term {
    Term::bag((0..n as i64).map(|x| ppair(x, Term::empty_seq())).collect())
}

/// The distinguished symbol `⊥` (token in transit).
pub fn bot() -> Term {
    Term::sym("bot")
}

/// A message record `(a, (b, m))`.
pub fn msg(a: Term, b: Term, m: Term) -> Term {
    Term::tuple(vec![a, Term::tuple(vec![b, m])])
}

/// Cyclic successor arithmetic on `Int` node terms.
pub fn plus(x: &Term, k: i64, n: usize) -> Term {
    let n = n as i64;
    let x = x.as_int().expect("node id");
    Term::int((x + k.rem_euclid(n)) % n)
}

/// Cyclic predecessor arithmetic on `Int` node terms.
pub fn minus(x: &Term, k: i64, n: usize) -> Term {
    plus(x, -k, n)
}

/// Builds the whole-state tuple pattern of arity `arity`, binding every
/// field to the hidden variable `_f{i}` except the given overrides.
pub fn state_pat(arity: usize, overrides: Vec<(usize, Pat)>) -> Pat {
    let mut fields: Vec<Pat> = (0..arity).map(|i| Pat::var(format!("_f{i}"))).collect();
    for (i, p) in overrides {
        fields[i] = p;
    }
    Pat::tuple(fields)
}

/// Builds the whole-state tuple template of arity `arity`, passing every
/// field through (`_f{i}`) except the given overrides.
pub fn state_rhs(arity: usize, overrides: Vec<(usize, Rhs)>) -> Rhs {
    let mut fields: Vec<Rhs> = (0..arity).map(|i| Rhs::var(format!("_f{i}"))).collect();
    for (i, r) in overrides {
        fields[i] = r;
    }
    Rhs::tuple(fields)
}

/// Returns field `i` of a state tuple.
///
/// # Panics
///
/// Panics if the state is not a tuple or the index is out of range.
pub fn field(state: &Term, i: usize) -> &Term {
    &state.as_tuple().expect("state tuple")[i]
}

/// Whether all the given histories are pairwise prefix-comparable (i.e.
/// totally ordered by the prefix relation — the distributed analogue of the
/// prefix property when no single global `H` exists).
pub fn prefix_chain_ok<'a>(histories: impl IntoIterator<Item = &'a Term>) -> bool {
    let hs: Vec<&Term> = histories.into_iter().collect();
    for (i, a) in hs.iter().enumerate() {
        for b in &hs[i + 1..] {
            if !a.is_prefix_of(b) && !b.is_prefix_of(a) {
                return false;
            }
        }
    }
    true
}

/// Extracts every `H_x` from a `P` bag.
pub fn p_histories(p: &Term) -> Vec<&Term> {
    p.as_bag()
        .expect("P bag")
        .iter()
        .map(|entry| &entry.as_tuple().expect("P entry")[1])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_trs::matches;

    #[test]
    fn ring_arithmetic_wraps() {
        assert_eq!(plus(&Term::int(2), 1, 3), Term::int(0));
        assert_eq!(minus(&Term::int(0), 1, 3), Term::int(2));
        assert_eq!(plus(&Term::int(1), 5, 3), Term::int(0));
    }

    #[test]
    fn state_pat_binds_unmentioned_fields() {
        let state = Term::tuple(vec![Term::int(1), Term::int(2), Term::int(3)]);
        let pat = state_pat(3, vec![(1, Pat::var("middle"))]);
        let m = matches(&pat, &state);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["middle"], Term::int(2));
        assert_eq!(m[0]["_f0"], Term::int(1));
        // Round trip through state_rhs is the identity.
        let rhs = state_rhs(3, vec![(1, Rhs::var("middle"))]);
        assert_eq!(rhs.instantiate(&m[0]), state);
    }

    #[test]
    fn prefix_chain_detects_divergence() {
        let a = Term::seq(vec![datum(0, 1)]);
        let b = Term::seq(vec![datum(0, 1), datum(1, 1)]);
        let c = Term::seq(vec![datum(1, 1)]);
        assert!(prefix_chain_ok([&a, &b]));
        assert!(prefix_chain_ok([&a, &a, &b]));
        assert!(!prefix_chain_ok([&a, &b, &c]));
        assert!(prefix_chain_ok(Vec::<&Term>::new()));
    }

    #[test]
    fn initial_structures() {
        let q = q_init(2);
        assert_eq!(q.as_bag().unwrap().len(), 2);
        let p = p_init(2);
        let hs = p_histories(&p);
        assert_eq!(hs.len(), 2);
        assert!(hs.iter().all(|h| h.as_seq().unwrap().is_empty()));
    }
}
