//! # atp-spec — the paper's protocol family as executable TRS specifications
//!
//! This crate transcribes the six systems of *"Developing and Refining an
//! Adaptive Token-Passing Strategy"* into the [`atp_trs`] engine, keeping the
//! paper's state shapes and rule structure:
//!
//! | Module | System | Figure | State |
//! |---|---|---|---|
//! | [`systems::s`] | S | Fig. 2 | `(Q, H)` |
//! | [`systems::s1`] | S1 | Fig. 3 | `(Q, H, P)` |
//! | [`systems::token`] | Token | Fig. 4 | `(Q, H, P, T)` |
//! | [`systems::mp`] | Message-Passing | Fig. 5 | `(Q, P, T, I, O)` |
//! | [`systems::search`] | Search | Fig. 6 | `(Q, P, T, I, O, W)` |
//! | [`systems::binary`] | BinarySearch | Fig. 7 | `(Q, P, T, I, O, W)` |
//!
//! and then *machine-checks* the paper's safety claims on small instances by
//! exhaustive exploration:
//!
//! * the **prefix property** (Definition 2) holds in every reachable state
//!   of every system — Lemmas 1–3 and Theorem 1;
//! * **token uniqueness** holds in the message-passing systems (at any time
//!   exactly one token exists, held or in flight);
//! * each refinement step simulates its abstraction
//!   ([`refinement::check_refinement`]): every concrete transition maps to a
//!   short path (stutter or ≤ 2 rules) of the abstract system.
//!
//! ## Bounding
//!
//! The paper's systems are infinite-state (rule 1 can fire forever). For
//! exhaustive checking each node is limited to `B` lifetime broadcasts via a
//! generation counter in its `Q` entry, and a node keeps at most one search
//! outstanding — both are *restrictions* (subsets of the behaviours), so
//! safety verified on the restricted system is evidence for the paper's
//! claims, and the unbounded rules remain exercised by `atp-core`'s
//! executable plane.
//!
//! ```rust
//! use atp_spec::systems::s1;
//! use atp_spec::check::check_prefix_everywhere;
//!
//! let report = check_prefix_everywhere(&s1::system(2, 1), s1::initial(2), s1::prefix_ok, 50_000);
//! assert!(report.holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod refinement;
pub mod systems;
pub mod terms;
