//! System Search (Figure 6): non-deterministic token search.
//!
//! State `(Q, P, T, I, O, W)`: a ready node emits a search message (`τ_x`,
//! rule 5) that migrates through the nodes, each of which sets a local trap
//! (rule 6); a holder with a trap sends the token straight to the trapped
//! requester (rule 7).
//!
//! Two bounding/realism refinements are applied, both *restrictions* of the
//! paper's rules (and both matching `atp-core`'s executable plane):
//!
//! * rule 5 keeps one search outstanding per node (Section 4.4's
//!   single-outstanding-request refinement);
//! * rule 7 fires only when the holder has no pending datum of its own —
//!   holders serve themselves before delegating, which is also what makes
//!   rule 7 map onto Message-Passing's send rule (whose append must be a
//!   no-op for the histories to agree);
//! * an absorb variant of rule 6 lets a search message end instead of
//!   migrating forever (required as the image of System BinarySearch's
//!   range-exhausted search, and harmless: traps are the only effect either
//!   way).

use atp_trs::{Pat, Rhs, Rule, Subst, Term, Trs};

use super::common::{q_entry_pat, q_entry_reset, rule_request};
use super::mp::{rule_transfer, I, O, P, Q, T};
use crate::terms::{bot, field, msg, p_histories, p_init, prefix_chain_ok, q_init, state_pat, state_rhs};

/// State arity: `(Q, P, T, I, O, W)`.
pub const ARITY: usize = 6;

/// `W` field index.
pub const W: usize = 5;

/// The trap symbol `τ_z` as a term.
pub fn tau(z: &Term) -> Term {
    Term::tuple(vec![Term::sym("tau"), z.clone()])
}

/// Whether a message bag contains a `τ_z` message.
fn msgs_contain_tau(bag: &Term, z: &Term) -> bool {
    bag.as_bag().expect("message bag").iter().any(|entry| {
        entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1] == tau(z)
    })
}

/// Whether any node has a trap `(·, τ_z)` set.
fn traps_contain(w: &Term, z: &Term) -> bool {
    w.as_bag()
        .expect("W bag")
        .iter()
        .any(|entry| entry.as_tuple().expect("trap")[1] == tau(z))
}

/// Inserts `(x, τ_z)` into `W` unless already present (trap dedup).
fn trap_insert(s: &Subst, x: &str, z: &str) -> Term {
    let entry = Term::tuple(vec![s[x].clone(), tau(&s[z])]);
    if s["W"].as_bag().expect("W").contains(&entry) {
        s["W"].clone()
    } else {
        s["W"].bag_insert(entry)
    }
}

/// Rule 3 (receive the token): identical to MP's rule 4 but guarded to token
/// (history-bearing) messages only.
fn rule_receive() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::Wild])], "P"),
            ),
            (T, Pat::sym("bot")),
            (
                I,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("x"),
                        Pat::tuple(vec![Pat::var("y"), Pat::var("Hm")]),
                    ])],
                    "I",
                ),
            ),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                P,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hm")])], "P"),
            ),
            (T, Rhs::var("x")),
            (I, Rhs::var("I")),
        ],
    );
    Rule::new("3:receive", lhs, rhs).with_guard(|s| matches!(s["Hm"], Term::Seq(_)))
}

/// Rule 4 (holder broadcasts and sends the token to `y`).
fn rule_send(self_send: bool) -> Rule {
    let p_pat = if self_send {
        Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P")
    } else {
        Pat::bag(
            vec![
                Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")]),
                Pat::tuple(vec![Pat::var("y"), Pat::var("Hy")]),
            ],
            "P",
        )
    };
    let lhs = state_pat(
        ARITY,
        vec![(Q, q_entry_pat()), (P, p_pat), (T, Pat::var("x")), (O, Pat::var("O"))],
    );
    let new_h = |s: &Subst| s["Hx"].append(&s["d"]);
    let dest = if self_send { "x" } else { "y" };
    let p_rhs = if self_send {
        Rhs::bag(
            vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::apply("H⊕d", new_h)])],
            "P",
        )
    } else {
        Rhs::bag(
            vec![
                Rhs::tuple(vec![Rhs::var("x"), Rhs::apply("H⊕d", new_h)]),
                Rhs::tuple(vec![Rhs::var("y"), Rhs::var("Hy")]),
            ],
            "P",
        )
    };
    let rhs = state_rhs(
        ARITY,
        vec![
            (Q, q_entry_reset()),
            (P, p_rhs),
            (T, Rhs::sym("bot")),
            (
                O,
                Rhs::apply("O|(x,(y,H⊕d))", move |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s[dest].clone(), new_h(s)))
                }),
            ),
        ],
    );
    Rule::new(if self_send { "4:send-self" } else { "4:send" }, lhs, rhs)
}

/// Rule 5 (issue a search): a ready node traps itself and mails `τ_x` to
/// some other node, provided it has no search already outstanding.
fn rule_gimme() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(
                    vec![
                        Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")]),
                        Pat::tuple(vec![Pat::var("y"), Pat::var("Hy")]),
                    ],
                    "P",
                ),
            ),
            (I, Pat::var("I")),
            (O, Pat::var("O")),
            (W, Pat::var("W")),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                Q,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("d"), Rhs::var("g")])],
                    "Q",
                ),
            ),
            (
                P,
                Rhs::bag(
                    vec![
                        Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")]),
                        Rhs::tuple(vec![Rhs::var("y"), Rhs::var("Hy")]),
                    ],
                    "P",
                ),
            ),
            (I, Rhs::var("I")),
            (
                O,
                Rhs::apply("O|(x,(y,τx))", |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s["y"].clone(), tau(&s["x"])))
                }),
            ),
            (W, Rhs::apply("W|(x,τx)", |s| trap_insert(s, "x", "x"))),
        ],
    );
    Rule::new("5:gimme", lhs, rhs).with_guard(|s| {
        !s["d"].as_seq().expect("pending").is_empty()
            && !traps_contain(&s["W"], &s["x"])
            && !msgs_contain_tau(&s["I"], &s["x"])
            && !msgs_contain_tau(&s["O"], &s["x"])
    })
}

/// Rule 6 (migrate a search): consume `τ_z`, set the local trap, and either
/// forward to another node (`forward = true`) or absorb the message.
fn rule_forward(forward: bool) -> Rule {
    let p_pat = if forward {
        Pat::bag(
            vec![
                Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")]),
                Pat::tuple(vec![Pat::var("u"), Pat::var("Hu")]),
            ],
            "P",
        )
    } else {
        Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P")
    };
    let lhs = state_pat(
        ARITY,
        vec![
            (P, p_pat),
            (
                I,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("x"),
                        Pat::tuple(vec![
                            Pat::Wild,
                            Pat::tuple(vec![Pat::sym("tau"), Pat::var("z")]),
                        ]),
                    ])],
                    "I",
                ),
            ),
            (O, Pat::var("O")),
            (W, Pat::var("W")),
        ],
    );
    let p_rhs = if forward {
        Rhs::bag(
            vec![
                Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")]),
                Rhs::tuple(vec![Rhs::var("u"), Rhs::var("Hu")]),
            ],
            "P",
        )
    } else {
        Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")])], "P")
    };
    let mut overrides = vec![
        (P, p_rhs),
        (I, Rhs::var("I")),
        (W, Rhs::apply("W|(x,τz)", |s| trap_insert(s, "x", "z"))),
    ];
    overrides.push(if forward {
        (
            O,
            Rhs::apply("O|(x,(u,τz))", |s| {
                s["O"].bag_insert(msg(s["x"].clone(), s["u"].clone(), tau(&s["z"])))
            }),
        )
    } else {
        (O, Rhs::var("O"))
    });
    let rhs = state_rhs(ARITY, overrides);
    Rule::new(if forward { "6:forward" } else { "6:absorb" }, lhs, rhs)
}

/// Rule 7 (grant): a holder with no pending datum of its own serves a
/// trapped requester directly.
fn rule_grant() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P"),
            ),
            (T, Pat::var("x")),
            (O, Pat::var("O")),
            (
                W,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("x"),
                        Pat::tuple(vec![Pat::sym("tau"), Pat::var("z")]),
                    ])],
                    "W",
                ),
            ),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                Q,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("d"), Rhs::var("g")])],
                    "Q",
                ),
            ),
            (
                P,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")])], "P"),
            ),
            (T, Rhs::sym("bot")),
            (
                O,
                Rhs::apply("O|(x,(z,H))", |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s["z"].clone(), s["Hx"].clone()))
                }),
            ),
            (W, Rhs::var("W")),
        ],
    );
    Rule::new("7:grant", lhs, rhs)
        .with_guard(|s| s["d"].as_seq().expect("pending").is_empty())
}

/// The rules of System Search.
pub fn system(_n: usize, b: i64) -> Trs {
    Trs::new(vec![
        rule_request(ARITY, b),
        rule_transfer(ARITY),
        rule_receive(),
        rule_send(false),
        rule_send(true),
        rule_gimme(),
        rule_forward(true),
        rule_forward(false),
        rule_grant(),
    ])
}

/// Initial state: node 0 holds the token; no messages, no traps.
pub fn initial(n: usize) -> Term {
    Term::tuple(vec![
        q_init(n),
        p_init(n),
        Term::int(0),
        Term::bag(vec![]),
        Term::bag(vec![]),
        Term::bag(vec![]),
    ])
}

/// Histories carried by *token* messages (search messages carry none).
fn token_histories(state: &Term) -> Vec<&Term> {
    let mut out = Vec::new();
    for fi in [I, O] {
        for entry in field(state, fi).as_bag().expect("msgs") {
            let m = &entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1];
            if matches!(m, Term::Seq(_)) {
                out.push(m);
            }
        }
    }
    out
}

/// Distributed prefix property (local histories + in-flight token).
pub fn prefix_ok(state: &Term) -> bool {
    let mut hs = p_histories(field(state, P));
    hs.extend(token_histories(state));
    prefix_chain_ok(hs)
}

/// Token uniqueness: held or exactly one token message in flight.
pub fn token_unique(state: &Term) -> bool {
    let held = usize::from(field(state, T) != &bot());
    held + token_histories(state).len() == 1
}

/// Refinement map into Message-Passing: forget `W` and erase search
/// messages.
pub fn to_mp(state: &Term) -> Term {
    let strip = |fi: usize| {
        Term::bag(
            field(state, fi)
                .as_bag()
                .expect("msgs")
                .iter()
                .filter(|entry| {
                    matches!(
                        entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1],
                        Term::Seq(_)
                    )
                })
                .cloned()
                .collect(),
        )
    };
    Term::tuple(vec![
        field(state, Q).clone(),
        field(state, P).clone(),
        field(state, T).clone(),
        strip(I),
        strip(O),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_prefix_everywhere;
    use crate::refinement::check_refinement;
    use crate::systems::mp;
    use atp_trs::Explorer;

    /// N = 2 is exhaustible (≈19k states); N = 3 exceeds memory-friendly
    /// bounds (>500k), so it gets *bounded* model checking.
    const EXHAUSTIVE_CAP: usize = 100_000;
    const BOUNDED_CAP: usize = 120_000;

    #[test]
    fn prefix_property_holds_everywhere_n2() {
        let report =
            check_prefix_everywhere(&system(2, 1), initial(2), prefix_ok, EXHAUSTIVE_CAP);
        assert!(report.holds(), "violation: {:?}", report.violation);
    }

    #[test]
    fn token_uniqueness_holds_everywhere_n2() {
        let report =
            check_prefix_everywhere(&system(2, 1), initial(2), token_unique, EXHAUSTIVE_CAP);
        assert!(report.holds(), "violation: {:?}", report.violation);
    }

    #[test]
    fn bounded_check_n3() {
        let inv = |s: &Term| prefix_ok(s) && token_unique(s);
        let report = check_prefix_everywhere(&system(3, 1), initial(3), inv, BOUNDED_CAP);
        assert!(report.violation_free(), "violation: {:?}", report.violation);
        assert!(report.states() >= BOUNDED_CAP, "bounded check should fill the cap");
    }

    #[test]
    fn refines_message_passing() {
        let graph = Explorer::with_max_states(EXHAUSTIVE_CAP).explore(&system(2, 1), initial(2));
        assert!(!graph.is_truncated());
        check_refinement(&graph, &mp::system(2, 1), to_mp, 1).expect("Search must refine MP");
    }

    #[test]
    fn grants_happen_through_traps() {
        // Some reachable state has the token at a node that got it via a
        // grant while traps existed: witness that rule 7 fires.
        let graph = Explorer::with_max_states(EXHAUSTIVE_CAP).explore(&system(2, 1), initial(2));
        let trapped = graph
            .states()
            .iter()
            .any(|s| !field(s, W).as_bag().unwrap().is_empty());
        assert!(trapped, "traps are set");
        // And node 1 (never the initial holder) can end up holding.
        assert!(graph
            .states()
            .iter()
            .any(|s| field(s, T) == &Term::int(1)));
    }
}
