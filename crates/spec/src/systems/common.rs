//! Rule fragments shared by several systems.

use atp_trs::{Pat, Rhs, Rule, Term};

use crate::terms::{datum, state_pat, state_rhs};

/// The paper's rule 1 — *"a node wishes to broadcast"* — parameterized by
/// the state arity (every system carries it unchanged, with extra fields).
///
/// `(Q | (x, d_x, g_x), …) → (Q | (x, d_x ⊕ new_x, g_x + 1), …)` if
/// `g_x < b`. The generation counter `g_x` realizes the Section 4.4
/// round-counter bounding so exploration terminates.
pub fn rule_request(arity: usize, b: i64) -> Rule {
    let lhs = state_pat(
        arity,
        vec![(
            0,
            Pat::bag(
                vec![Pat::tuple(vec![
                    Pat::var("x"),
                    Pat::var("d"),
                    Pat::var("g"),
                ])],
                "Q",
            ),
        )],
    );
    let rhs = state_rhs(
        arity,
        vec![(
            0,
            Rhs::bag(
                vec![Rhs::tuple(vec![
                    Rhs::var("x"),
                    Rhs::apply("d⊕new", |s| {
                        let x = s["x"].as_int().expect("node id");
                        let g = s["g"].as_int().expect("generation");
                        s["d"].append(&datum(x, g + 1))
                    }),
                    Rhs::apply("g+1", |s| Term::int(s["g"].as_int().expect("gen") + 1)),
                ])],
                "Q",
            ),
        )],
    );
    Rule::new("1:request", lhs, rhs)
        .with_guard(move |s| s["g"].as_int().expect("generation") < b)
}

/// A pattern for one `Q` entry `(x, d, g)` inside `Q`.
pub fn q_entry_pat() -> Pat {
    Pat::bag(
        vec![Pat::tuple(vec![
            Pat::var("x"),
            Pat::var("d"),
            Pat::var("g"),
        ])],
        "Q",
    )
}

/// The reconstruction of that entry with its pending data cleared
/// (`d_x := φ_x`), as every broadcast rule does.
pub fn q_entry_reset() -> Rhs {
    Rhs::bag(
        vec![Rhs::tuple(vec![
            Rhs::var("x"),
            Rhs::Seq(vec![]),
            Rhs::var("g"),
        ])],
        "Q",
    )
}

/// Computed `H ⊕ d_x` over the bound variables `hvar` and `"d"`.
pub fn append_d(hvar: &'static str) -> Rhs {
    Rhs::apply("H⊕d", move |s| s[hvar].append(&s["d"]))
}
