//! System Token (Figure 4): broadcasting requires the token.
//!
//! State `(Q, H, P, T)`: rule 2 now fires only at the token holder (`T = x`)
//! and combines S1's broadcast and local-copy rules — the holder appends its
//! data and refreshes its own prefix in one step, then passes the token to
//! an arbitrary node `y`. Lemma 2: the reachable states are a subset of
//! S1's, so the prefix property carries over.

use atp_trs::{Pat, Rhs, Rule, Term, Trs};

use super::common::{append_d, q_entry_pat, q_entry_reset, rule_request};
use crate::terms::{field, p_histories, p_init, q_init, state_pat, state_rhs};

/// State arity: `(Q, H, P, T)`.
pub const ARITY: usize = 4;

/// Rule 2 (pass to another node `y`, bound through its `P` entry):
/// `(Q|(x,d_x), H, P|(x,−), x) → (Q|(x,φ_x), H⊕d_x, P|(x,H⊕d_x), y)`.
fn rule_broadcast_pass() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (0, q_entry_pat()),
            (1, Pat::var("H")),
            (
                2,
                Pat::bag(
                    vec![
                        Pat::tuple(vec![Pat::var("x"), Pat::Wild]),
                        Pat::tuple(vec![Pat::var("y"), Pat::var("Hy")]),
                    ],
                    "P",
                ),
            ),
            (3, Pat::var("x")), // non-linear: T must equal the Q entry's x
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (0, q_entry_reset()),
            (1, append_d("H")),
            (
                2,
                Rhs::bag(
                    vec![
                        Rhs::tuple(vec![Rhs::var("x"), append_d("H")]),
                        Rhs::tuple(vec![Rhs::var("y"), Rhs::var("Hy")]),
                    ],
                    "P",
                ),
            ),
            (3, Rhs::var("y")),
        ],
    );
    Rule::new("2:broadcast-pass", lhs, rhs)
}

/// Rule 2 with `y = x` (the holder may keep the token).
fn rule_broadcast_keep() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (0, q_entry_pat()),
            (1, Pat::var("H")),
            (
                2,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::Wild])], "P"),
            ),
            (3, Pat::var("x")),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (0, q_entry_reset()),
            (1, append_d("H")),
            (
                2,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), append_d("H")])], "P"),
            ),
            (3, Rhs::var("x")),
        ],
    );
    Rule::new("2:broadcast-keep", lhs, rhs)
}

/// The rules of System Token.
pub fn system(_n: usize, b: i64) -> Trs {
    Trs::new(vec![
        rule_request(ARITY, b),
        rule_broadcast_pass(),
        rule_broadcast_keep(),
    ])
}

/// Initial state: node 0 holds the token.
pub fn initial(n: usize) -> Term {
    Term::tuple(vec![
        q_init(n),
        Term::empty_seq(),
        p_init(n),
        Term::int(0),
    ])
}

/// Definition 2 for Token: every local history is a prefix of `H`.
pub fn prefix_ok(state: &Term) -> bool {
    let h = field(state, 1);
    p_histories(field(state, 2))
        .into_iter()
        .all(|hx| hx.is_prefix_of(h))
}

/// The refinement mapping into S1: forget `T`.
pub fn to_s1(state: &Term) -> Term {
    Term::tuple(vec![
        field(state, 0).clone(),
        field(state, 1).clone(),
        field(state, 2).clone(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_prefix_everywhere;
    use crate::refinement::check_refinement;
    use crate::systems::s1;
    use atp_trs::Explorer;

    #[test]
    fn lemma_2_prefix_property_holds_everywhere() {
        let report = check_prefix_everywhere(&system(3, 1), initial(3), prefix_ok, 150_000);
        assert!(report.holds(), "violation: {:?}", report.violation);
    }

    #[test]
    fn refines_s1_with_two_step_paths() {
        // Token's rule 2 is the composition of S1's rules 2 and 3, so a
        // single Token step needs up to two abstract S1 steps.
        let graph = Explorer::with_max_states(150_000).explore(&system(3, 1), initial(3));
        assert!(!graph.is_truncated());
        check_refinement(&graph, &s1::system(3, 1), to_s1, 2).expect("Token must refine S1");
    }

    #[test]
    fn only_the_holder_broadcasts() {
        let graph = Explorer::with_max_states(150_000).explore(&system(2, 1), initial(2));
        // In every edge that grows H, the source state's T matches the node
        // whose datum was appended.
        for &(from, _, to) in graph.edges() {
            let sh = field(&graph.states()[from], 1).as_seq().unwrap().len();
            let th = field(&graph.states()[to], 1).as_seq().unwrap();
            if th.len() > sh {
                let appended_origin = th[sh].as_tuple().unwrap()[1].clone();
                let holder = field(&graph.states()[from], 3).clone();
                assert_eq!(appended_origin, holder);
            }
        }
    }
}
