//! System BinarySearch (Figure 7): circular rotation + binary search.
//!
//! State `(Q, P, T, I, O, W)` as in System Search, but:
//!
//! * rule 4 rotates the token strictly to `x⁺¹` (the ring restriction);
//! * search messages carry the requester's history and a range: rule 5
//!   mails `(N, H_x, τ_x)` directly across the ring; rule 6 compares the
//!   carried history with the local one (`⊂_C`) to pick clockwise or
//!   counter-clockwise and halves the range — a range-exhausted search is
//!   absorbed (its traps remain);
//! * rule 7 dispatches the token to a trapped requester *decorated* (`ŷ`),
//!   and rule 8 has the requester append its datum and return the token to
//!   the interception point, where rotation resumes.
//!
//! Theorem 1 (the prefix property) is machine-checked here on small
//! instances, along with token uniqueness and the simulation into System
//! Search.

use atp_trs::{Pat, Rhs, Rule, Subst, Term, Trs};

use super::common::{q_entry_pat, q_entry_reset, rule_request};
use super::mp::{rule_transfer, I, O, P, Q, T};
use super::search;
use crate::terms::{
    bot, field, minus, msg, p_histories, p_init, plus, prefix_chain_ok, q_init, state_pat,
    state_rhs,
};

/// State arity: `(Q, P, T, I, O, W)`.
pub const ARITY: usize = 6;

/// `W` field index.
pub const W: usize = 5;

/// An undecorated token message carrying history `h`.
pub fn tok(h: Term) -> Term {
    Term::tuple(vec![Term::sym("tok"), h])
}

/// A decorated (`ŷ`) token message: the receiver must return it after use.
pub fn hat(h: Term) -> Term {
    Term::tuple(vec![Term::sym("hat"), h])
}

/// A search message `(n, H_z, τ_z)` with remaining range `n`.
pub fn gim(n: i64, hz: Term, z: Term) -> Term {
    Term::tuple(vec![Term::sym("gim"), Term::int(n), hz, z])
}

fn is_gim_for(m: &Term, z: &Term) -> bool {
    m.as_tuple()
        .map(|t| t.len() == 4 && t[0] == Term::sym("gim") && &t[3] == z)
        .unwrap_or(false)
}

fn msgs_contain_gim(bag: &Term, z: &Term) -> bool {
    bag.as_bag().expect("msgs").iter().any(|entry| {
        is_gim_for(
            &entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1],
            z,
        )
    })
}

fn traps_contain(w: &Term, z: &Term) -> bool {
    w.as_bag()
        .expect("W")
        .iter()
        .any(|entry| &entry.as_tuple().expect("trap")[1] == z)
}

fn trap_insert(s: &Subst, x: &str, z: &str) -> Term {
    let entry = Term::tuple(vec![s[x].clone(), s[z].clone()]);
    if s["W"].as_bag().expect("W").contains(&entry) {
        s["W"].clone()
    } else {
        s["W"].bag_insert(entry)
    }
}

/// Rule 3 (receive an undecorated token).
fn rule_receive() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::Wild])], "P"),
            ),
            (T, Pat::sym("bot")),
            (
                I,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("x"),
                        Pat::tuple(vec![
                            Pat::Wild,
                            Pat::tuple(vec![Pat::sym("tok"), Pat::var("Hm")]),
                        ]),
                    ])],
                    "I",
                ),
            ),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                P,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hm")])], "P"),
            ),
            (T, Rhs::var("x")),
            (I, Rhs::var("I")),
        ],
    );
    Rule::new("3:receive", lhs, rhs)
}

/// Rule 4 (broadcast + rotate): the holder appends its (possibly empty)
/// pending data and sends the token to `x⁺¹`.
fn rule_rotate(n: usize) -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P"),
            ),
            (T, Pat::var("x")),
            (O, Pat::var("O")),
        ],
    );
    let new_h = |s: &Subst| s["Hx"].append(&s["d"]);
    let rhs = state_rhs(
        ARITY,
        vec![
            (Q, q_entry_reset()),
            (
                P,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::apply("H⊕d", new_h)])],
                    "P",
                ),
            ),
            (T, Rhs::sym("bot")),
            (
                O,
                Rhs::apply("O|(x,(x+1,tok))", move |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), plus(&s["x"], 1, n), tok(new_h(s))))
                }),
            ),
        ],
    );
    Rule::new("4:rotate", lhs, rhs)
}

/// Rule 5 (issue a search): mail `(N, H_x, τ_x)` directly across the ring
/// and trap locally; one search outstanding per node.
fn rule_gimme(n: usize) -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P"),
            ),
            (I, Pat::var("I")),
            (O, Pat::var("O")),
            (W, Pat::var("W")),
        ],
    );
    let across = (n as i64).div_euclid(2) + (n as i64 % 2);
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                Q,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("d"), Rhs::var("g")])],
                    "Q",
                ),
            ),
            (
                P,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")])], "P"),
            ),
            (I, Rhs::var("I")),
            (
                O,
                Rhs::apply("O|(x,(across,gim))", move |s| {
                    s["O"].bag_insert(msg(
                        s["x"].clone(),
                        plus(&s["x"], across, n),
                        gim(n as i64, s["Hx"].clone(), s["x"].clone()),
                    ))
                }),
            ),
            (W, Rhs::apply("W|(x,x)", |s| trap_insert(s, "x", "x"))),
        ],
    );
    Rule::new("5:gimme", lhs, rhs).with_guard(|s| {
        !s["d"].as_seq().expect("pending").is_empty()
            && !traps_contain(&s["W"], &s["x"])
            && !msgs_contain_gim(&s["I"], &s["x"])
            && !msgs_contain_gim(&s["O"], &s["x"])
    })
}

fn gim_lhs() -> Pat {
    Pat::bag(
        vec![Pat::tuple(vec![
            Pat::var("x"),
            Pat::tuple(vec![
                Pat::Wild,
                Pat::tuple(vec![
                    Pat::sym("gim"),
                    Pat::var("n"),
                    Pat::var("Hz"),
                    Pat::var("z"),
                ]),
            ]),
        ])],
        "I",
    )
}

/// Rule 6 (migrate a search): trap locally and forward `(n/2, H_z, τ_z)` to
/// `x⁻ⁿ/²` if `H_x ⊂_C H_z`, else `x⁺ⁿ/²`; a range-exhausted search is
/// absorbed.
fn rule_forward(n: usize, forward: bool) -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P"),
            ),
            (I, gim_lhs()),
            (O, Pat::var("O")),
            (W, Pat::var("W")),
        ],
    );
    let mut overrides = vec![
        (
            P,
            Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")])], "P"),
        ),
        (I, Rhs::var("I")),
        (W, Rhs::apply("W|(x,z)", |s| trap_insert(s, "x", "z"))),
    ];
    if !forward {
        overrides.push((O, Rhs::var("O")));
    }
    if forward {
        overrides.push((
            O,
            Rhs::apply("O|(x,(u,gim/2))", move |s| {
                let half = s["n"].as_int().expect("range") / 2;
                let u = if s["Hx"].is_prefix_of(&s["Hz"]) {
                    minus(&s["x"], half, n)
                } else {
                    plus(&s["x"], half, n)
                };
                s["O"].bag_insert(msg(
                    s["x"].clone(),
                    u,
                    gim(half, s["Hz"].clone(), s["z"].clone()),
                ))
            }),
        ));
    }
    let rhs = state_rhs(ARITY, overrides);
    let rule = Rule::new(if forward { "6:forward" } else { "6:absorb" }, lhs, rhs);
    if forward {
        rule.with_guard(|s| s["n"].as_int().expect("range") / 2 >= 1)
    } else {
        rule.with_guard(|s| s["n"].as_int().expect("range") / 2 < 1)
    }
}

/// Rule 7 (grant, decorated): a holder with no pending datum sends the token
/// to a trapped requester, marked to be returned.
fn rule_grant() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P"),
            ),
            (T, Pat::var("x")),
            (O, Pat::var("O")),
            (
                W,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("z")])], "W"),
            ),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                Q,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("d"), Rhs::var("g")])],
                    "Q",
                ),
            ),
            (
                P,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hx")])], "P"),
            ),
            (T, Rhs::sym("bot")),
            (
                O,
                Rhs::apply("O|(x,(ẑ,H))", |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s["z"].clone(), hat(s["Hx"].clone())))
                }),
            ),
            (W, Rhs::var("W")),
        ],
    );
    Rule::new("7:grant", lhs, rhs)
        .with_guard(|s| s["d"].as_seq().expect("pending").is_empty())
}

/// Rule 8 (use and return): the requester receives the decorated token,
/// appends its datum, and immediately returns the token to the sender.
fn rule_use_and_return() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::Wild])], "P"),
            ),
            (T, Pat::sym("bot")),
            (
                I,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("x"),
                        Pat::tuple(vec![
                            Pat::var("y"),
                            Pat::tuple(vec![Pat::sym("hat"), Pat::var("Hm")]),
                        ]),
                    ])],
                    "I",
                ),
            ),
            (O, Pat::var("O")),
        ],
    );
    let new_h = |s: &Subst| s["Hm"].append(&s["d"]);
    let rhs = state_rhs(
        ARITY,
        vec![
            (Q, q_entry_reset()),
            (
                P,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::apply("H⊕d", new_h)])],
                    "P",
                ),
            ),
            (T, Rhs::sym("bot")),
            (I, Rhs::var("I")),
            (
                O,
                Rhs::apply("O|(x,(y,tok))", move |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s["y"].clone(), tok(new_h(s))))
                }),
            ),
        ],
    );
    Rule::new("8:use-and-return", lhs, rhs)
}

/// The 8 rules of System BinarySearch for a ring of `n` nodes.
pub fn system(n: usize, b: i64) -> Trs {
    Trs::new(vec![
        rule_request(ARITY, b),
        rule_transfer(ARITY),
        rule_receive(),
        rule_rotate(n),
        rule_gimme(n),
        rule_forward(n, true),
        rule_forward(n, false),
        rule_grant(),
        rule_use_and_return(),
    ])
}

/// Initial state: node 0 holds the token.
pub fn initial(n: usize) -> Term {
    Term::tuple(vec![
        q_init(n),
        p_init(n),
        Term::int(0),
        Term::bag(vec![]),
        Term::bag(vec![]),
        Term::bag(vec![]),
    ])
}

/// Histories in the system: local prefixes, token messages (tok/hat) and
/// the snapshots inside search messages.
fn all_histories(state: &Term) -> Vec<&Term> {
    let mut out = p_histories(field(state, P));
    for fi in [I, O] {
        for entry in field(state, fi).as_bag().expect("msgs") {
            let m = &entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1];
            if let Some(t) = m.as_tuple() {
                match t[0].as_sym() {
                    Some("tok") | Some("hat") => out.push(&t[1]),
                    Some("gim") => out.push(&t[2]),
                    _ => {}
                }
            }
        }
    }
    out
}

/// Theorem 1: the distributed prefix property.
pub fn prefix_ok(state: &Term) -> bool {
    prefix_chain_ok(all_histories(state))
}

/// Token uniqueness (counting decorated and undecorated frames).
pub fn token_unique(state: &Term) -> bool {
    let held = usize::from(field(state, T) != &bot());
    let mut in_flight = 0;
    for fi in [I, O] {
        for entry in field(state, fi).as_bag().expect("msgs") {
            let m = &entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1];
            if let Some(t) = m.as_tuple() {
                if matches!(t[0].as_sym(), Some("tok") | Some("hat")) {
                    in_flight += 1;
                }
            }
        }
    }
    held + in_flight == 1
}

/// Search ranges never go below 1 (rule 6's halving bottoms out).
pub fn ranges_positive(state: &Term) -> bool {
    for fi in [I, O] {
        for entry in field(state, fi).as_bag().expect("msgs") {
            let m = &entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1];
            if let Some(t) = m.as_tuple() {
                if t.len() == 4 && t[0] == Term::sym("gim") && t[1].as_int().unwrap_or(0) < 1 {
                    return false;
                }
            }
        }
    }
    true
}

/// Refinement map into System Search: strip the range and carried history
/// from search messages, erase token decorations, flatten traps.
pub fn to_search(state: &Term) -> Term {
    let strip_msgs = |fi: usize| {
        Term::bag(
            field(state, fi)
                .as_bag()
                .expect("msgs")
                .iter()
                .map(|entry| {
                    let parts = entry.as_tuple().expect("msg");
                    let inner = parts[1].as_tuple().expect("msg");
                    let m = inner[1].as_tuple().expect("typed message");
                    let mapped = match m[0].as_sym() {
                        Some("tok") | Some("hat") => m[1].clone(),
                        Some("gim") => search::tau(&m[3]),
                        other => panic!("unknown message kind {other:?}"),
                    };
                    msg(parts[0].clone(), inner[0].clone(), mapped)
                })
                .collect(),
        )
    };
    let w = Term::bag(
        field(state, W)
            .as_bag()
            .expect("W")
            .iter()
            .map(|entry| {
                let t = entry.as_tuple().expect("trap");
                Term::tuple(vec![t[0].clone(), search::tau(&t[1])])
            })
            .collect(),
    );
    Term::tuple(vec![
        field(state, Q).clone(),
        field(state, P).clone(),
        field(state, T).clone(),
        strip_msgs(I),
        strip_msgs(O),
        w,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_prefix_everywhere;
    use crate::refinement::check_refinement;
    use atp_trs::Explorer;

    /// N = 2 is exhaustible (≈15k states); N = 3 exceeds memory-friendly
    /// bounds (>500k), so it gets *bounded* model checking.
    const EXHAUSTIVE_CAP: usize = 100_000;
    const BOUNDED_CAP: usize = 120_000;

    #[test]
    fn theorem_1_prefix_property_holds_everywhere_n2() {
        let report =
            check_prefix_everywhere(&system(2, 1), initial(2), prefix_ok, EXHAUSTIVE_CAP);
        assert!(report.holds(), "violation: {:?}", report.violation);
        assert!(report.states() > 500);
    }

    #[test]
    fn token_uniqueness_holds_everywhere_n2() {
        let report =
            check_prefix_everywhere(&system(2, 1), initial(2), token_unique, EXHAUSTIVE_CAP);
        assert!(report.holds(), "violation: {:?}", report.violation);
    }

    #[test]
    fn bounded_check_n3() {
        let inv = |s: &Term| prefix_ok(s) && token_unique(s) && ranges_positive(s);
        let report = check_prefix_everywhere(&system(3, 1), initial(3), inv, BOUNDED_CAP);
        assert!(report.violation_free(), "violation: {:?}", report.violation);
        assert!(report.states() >= BOUNDED_CAP, "bounded check should fill the cap");
    }

    #[test]
    fn search_ranges_stay_positive_n2() {
        let report =
            check_prefix_everywhere(&system(2, 1), initial(2), ranges_positive, EXHAUSTIVE_CAP);
        assert!(report.holds(), "violation: {:?}", report.violation);
    }

    #[test]
    fn refines_system_search() {
        let graph = Explorer::with_max_states(EXHAUSTIVE_CAP).explore(&system(2, 1), initial(2));
        assert!(!graph.is_truncated());
        // Rule 8 = Search receive + send: abstract paths up to length 2.
        check_refinement(&graph, &search::system(2, 1), to_search, 2)
            .expect("BinarySearch must refine Search");
    }

    #[test]
    fn decorated_grants_occur_and_return() {
        let graph = Explorer::with_max_states(EXHAUSTIVE_CAP).explore(&system(2, 1), initial(2));
        let has_hat = graph.states().iter().any(|s| {
            [I, O].iter().any(|&fi| {
                field(s, fi).as_bag().unwrap().iter().any(|entry| {
                    entry.as_tuple().unwrap()[1].as_tuple().unwrap()[1]
                        .as_tuple()
                        .map(|t| t[0] == Term::sym("hat"))
                        .unwrap_or(false)
                })
            })
        });
        assert!(has_hat, "rule 7 should fire somewhere in the state space");
    }
}
