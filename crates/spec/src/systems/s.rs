//! System S (Figure 2): the base abstract protocol.
//!
//! State `(Q, H)`: when a node wishes to broadcast it adds a datum to its
//! `Q` entry (rule 1); broadcasting appends the pending data to the single
//! global history `H` (rule 2). The prefix property is immediate — there are
//! no local copies yet — so the check here is the sanity invariant that `H`
//! never repeats a datum.

use atp_trs::{Pat, Rule, Term, Trs};

use super::common::{append_d, q_entry_pat, q_entry_reset, rule_request};
use crate::terms::{field, q_init, state_pat, state_rhs};

/// State arity: `(Q, H)`.
pub const ARITY: usize = 2;

/// Rule 2: `(Q | (x, d_x), H) → (Q, H ⊕ d_x)`.
fn rule_broadcast() -> Rule {
    let lhs = state_pat(ARITY, vec![(0, q_entry_pat()), (1, Pat::var("H"))]);
    let rhs = state_rhs(ARITY, vec![(0, q_entry_reset()), (1, append_d("H"))]);
    Rule::new("2:broadcast", lhs, rhs)
}

/// The rules of System S for `n` nodes, each broadcasting at most `b` times.
pub fn system(_n: usize, b: i64) -> Trs {
    Trs::new(vec![rule_request(ARITY, b), rule_broadcast()])
}

/// Initial state: `(||ₓ (x, φₓ), ∅)`.
pub fn initial(n: usize) -> Term {
    Term::tuple(vec![q_init(n), Term::empty_seq()])
}

/// The global history `H` of a System S state.
pub fn history(state: &Term) -> &Term {
    field(state, 1)
}

/// System S's safety invariant: every datum appears at most once in `H`
/// (histories only ever grow by fresh data).
pub fn prefix_ok(state: &Term) -> bool {
    let h = history(state).as_seq().expect("H sequence");
    for (i, a) in h.iter().enumerate() {
        if h[i + 1..].contains(a) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_prefix_everywhere;
    use atp_trs::Explorer;

    #[test]
    fn exploration_is_finite_and_safe() {
        let report = check_prefix_everywhere(&system(3, 2), initial(3), prefix_ok, 100_000);
        assert!(report.holds(), "violation: {:?}", report.violation);
        assert!(report.states() > 10);
    }

    #[test]
    fn broadcasts_extend_history() {
        let trs = system(2, 1);
        let graph = Explorer::default().explore(&trs, initial(2));
        // Some reachable state has both data in H.
        let full = graph
            .states()
            .iter()
            .find(|s| history(s).as_seq().unwrap().len() == 2);
        assert!(full.is_some(), "both broadcasts should be able to commit");
    }

    #[test]
    fn history_order_is_nondeterministic() {
        let trs = system(2, 1);
        let graph = Explorer::default().explore(&trs, initial(2));
        let orders: std::collections::HashSet<String> = graph
            .states()
            .iter()
            .filter(|s| history(s).as_seq().unwrap().len() == 2)
            .map(|s| history(s).to_string())
            .collect();
        // Both interleavings of the two nodes' data are reachable.
        assert_eq!(orders.len(), 2, "orders: {orders:?}");
    }
}
