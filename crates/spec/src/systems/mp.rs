//! System Message-Passing (Figure 5): no global state, explicit messages.
//!
//! State `(Q, P, T, I, O)`: the global history disappears as state and
//! travels inside token messages. `T` is either the holder's id or the
//! distinguished `⊥` while the token is in transit. The instantaneous
//! holder-to-holder handoff becomes a send rule (3) and a receive rule (4),
//! glued by the transfer rule (2) that models the network.
//!
//! Lemma 3: the prefix property — here, that all local histories and every
//! in-flight history are totally ordered by the prefix relation — holds in
//! every reachable state; we also machine-check **token uniqueness**
//! (exactly one token exists, held or in flight).

use atp_trs::{Pat, Rhs, Rule, Term, Trs};

use super::common::{q_entry_pat, q_entry_reset, rule_request};
use crate::terms::{bot, field, msg, p_histories, p_init, prefix_chain_ok, q_init, state_pat, state_rhs};

/// State arity: `(Q, P, T, I, O)`.
pub const ARITY: usize = 5;

/// Positions of the state fields.
pub const Q: usize = 0;
/// `P` field index.
pub const P: usize = 1;
/// `T` field index.
pub const T: usize = 2;
/// `I` field index.
pub const I: usize = 3;
/// `O` field index.
pub const O: usize = 4;

/// Rule 2 (transfer): `(…, I, O|(a,(b,m))) → (…, I|(b,(a,m)), O)`.
pub(crate) fn rule_transfer(arity: usize) -> Rule {
    let lhs = state_pat(
        arity,
        vec![
            (I, Pat::var("I")),
            (
                O,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("a"),
                        Pat::tuple(vec![Pat::var("b"), Pat::var("m")]),
                    ])],
                    "O",
                ),
            ),
        ],
    );
    let rhs = state_rhs(
        arity,
        vec![
            (
                I,
                Rhs::apply("I|(b,(a,m))", |s| {
                    s["I"].bag_insert(msg(s["b"].clone(), s["a"].clone(), s["m"].clone()))
                }),
            ),
            (O, Rhs::var("O")),
        ],
    );
    Rule::new("2:transfer", lhs, rhs)
}

/// Rule 3 (send to another node `y`): the holder appends its data, updates
/// its prefix, and mails the new history.
fn rule_send_other() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(
                    vec![
                        Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")]),
                        Pat::tuple(vec![Pat::var("y"), Pat::var("Hy")]),
                    ],
                    "P",
                ),
            ),
            (T, Pat::var("x")),
            (O, Pat::var("O")),
        ],
    );
    let new_h = |s: &atp_trs::Subst| s["Hx"].append(&s["d"]);
    let rhs = state_rhs(
        ARITY,
        vec![
            (Q, q_entry_reset()),
            (
                P,
                Rhs::bag(
                    vec![
                        Rhs::tuple(vec![Rhs::var("x"), Rhs::apply("H⊕d", new_h)]),
                        Rhs::tuple(vec![Rhs::var("y"), Rhs::var("Hy")]),
                    ],
                    "P",
                ),
            ),
            (T, Rhs::sym("bot")),
            (
                O,
                Rhs::apply("O|(x,(y,H⊕d))", move |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s["y"].clone(), new_h(s)))
                }),
            ),
        ],
    );
    Rule::new("3:send", lhs, rhs)
}

/// Rule 3 with `y = x` (mail the token to oneself).
fn rule_send_self() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (Q, q_entry_pat()),
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::var("Hx")])], "P"),
            ),
            (T, Pat::var("x")),
            (O, Pat::var("O")),
        ],
    );
    let new_h = |s: &atp_trs::Subst| s["Hx"].append(&s["d"]);
    let rhs = state_rhs(
        ARITY,
        vec![
            (Q, q_entry_reset()),
            (
                P,
                Rhs::bag(
                    vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::apply("H⊕d", new_h)])],
                    "P",
                ),
            ),
            (T, Rhs::sym("bot")),
            (
                O,
                Rhs::apply("O|(x,(x,H⊕d))", move |s| {
                    s["O"].bag_insert(msg(s["x"].clone(), s["x"].clone(), new_h(s)))
                }),
            ),
        ],
    );
    Rule::new("3:send-self", lhs, rhs)
}

/// Rule 4 (receive): `(−, P|(x,−), ⊥, I|(x,(y,H)), −) → (−, P|(x,H), x, I, −)`.
fn rule_receive() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (
                P,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("x"), Pat::Wild])], "P"),
            ),
            (T, Pat::sym("bot")),
            (
                I,
                Pat::bag(
                    vec![Pat::tuple(vec![
                        Pat::var("x"),
                        Pat::tuple(vec![Pat::var("y"), Pat::var("Hm")]),
                    ])],
                    "I",
                ),
            ),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (
                P,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("x"), Rhs::var("Hm")])], "P"),
            ),
            (T, Rhs::var("x")),
            (I, Rhs::var("I")),
        ],
    );
    Rule::new("4:receive", lhs, rhs)
}

/// The rules of System Message-Passing.
pub fn system(_n: usize, b: i64) -> Trs {
    Trs::new(vec![
        rule_request(ARITY, b),
        rule_transfer(ARITY),
        rule_send_other(),
        rule_send_self(),
        rule_receive(),
    ])
}

/// Initial state: node 0 holds the token, no messages in flight.
pub fn initial(n: usize) -> Term {
    Term::tuple(vec![
        q_init(n),
        p_init(n),
        Term::int(0),
        Term::bag(vec![]),
        Term::bag(vec![]),
    ])
}

/// Histories carried by the messages of `I` and `O` (all MP messages carry
/// one).
fn message_histories(state: &Term) -> Vec<&Term> {
    let mut out = Vec::new();
    for fi in [I, O] {
        for entry in field(state, fi).as_bag().expect("message bag") {
            let m = &entry.as_tuple().expect("msg")[1].as_tuple().expect("msg")[1];
            out.push(m);
        }
    }
    out
}

/// The distributed prefix property for MP: all local histories and all
/// in-flight histories are pairwise prefix-comparable.
pub fn prefix_ok(state: &Term) -> bool {
    let mut hs = p_histories(field(state, P));
    hs.extend(message_histories(state));
    prefix_chain_ok(hs)
}

/// Token uniqueness: exactly one token, either held (`T = x`) or in flight
/// (one message).
pub fn token_unique(state: &Term) -> bool {
    let held = usize::from(field(state, T) != &bot());
    let in_flight = field(state, I).as_bag().expect("I").len()
        + field(state, O).as_bag().expect("O").len();
    held + in_flight == 1
}

/// Refinement map into System S1: the global `H` is the longest history
/// anywhere in the system (local or in flight).
pub fn to_s1(state: &Term) -> Term {
    let mut hs = p_histories(field(state, P));
    hs.extend(message_histories(state));
    let h_glob = hs
        .into_iter()
        .max_by_key(|h| h.as_seq().expect("history").len())
        .cloned()
        .unwrap_or_else(Term::empty_seq);
    Term::tuple(vec![
        field(state, Q).clone(),
        h_glob,
        field(state, P).clone(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_prefix_everywhere;
    use crate::refinement::check_refinement;
    use crate::systems::s1;
    use atp_trs::Explorer;

    #[test]
    fn lemma_3_prefix_property_holds_everywhere() {
        let report = check_prefix_everywhere(&system(3, 1), initial(3), prefix_ok, 200_000);
        assert!(report.holds(), "violation: {:?}", report.violation);
        assert!(report.states() > 100);
    }

    #[test]
    fn token_uniqueness_holds_everywhere() {
        let report = check_prefix_everywhere(&system(3, 1), initial(3), token_unique, 200_000);
        assert!(report.holds(), "violation: {:?}", report.violation);
    }

    #[test]
    fn refines_s1() {
        let graph = Explorer::with_max_states(200_000).explore(&system(2, 1), initial(2));
        assert!(!graph.is_truncated());
        // Send = S1 broadcast (+ the holder's self-copy): 2 abstract steps;
        // receive = S1 copy: 1 step; transfer = stutter.
        check_refinement(&graph, &s1::system(2, 1), to_s1, 2).expect("MP must refine S1");
    }

    #[test]
    fn token_can_visit_every_node() {
        let graph = Explorer::with_max_states(200_000).explore(&system(3, 1), initial(3));
        for node in 0..3 {
            assert!(
                graph
                    .states()
                    .iter()
                    .any(|s| field(s, T) == &Term::int(node)),
                "node {node} never holds the token"
            );
        }
    }
}
