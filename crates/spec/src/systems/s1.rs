//! System S1 (Figure 3): local prefix histories.
//!
//! State `(Q, H, P)`: the first refinement adds the collection `P` of local
//! history prefixes. Rule 3 copies the global history into any node's local
//! record *"at any time … from a safety point of view, the nodes can perform
//! a copy in any order and at any time"*. Lemma 1: S1 satisfies the prefix
//! property.

use atp_trs::{Pat, Rhs, Rule, Term, Trs};

use super::common::{append_d, q_entry_pat, q_entry_reset, rule_request};
use crate::terms::{field, p_histories, p_init, q_init, state_pat, state_rhs};

/// State arity: `(Q, H, P)`.
pub const ARITY: usize = 3;

/// Rule 2: `(Q | (x, d_x), H, −) → (Q, H ⊕ d_x, −)`.
fn rule_broadcast() -> Rule {
    let lhs = state_pat(ARITY, vec![(0, q_entry_pat()), (1, Pat::var("H"))]);
    let rhs = state_rhs(ARITY, vec![(0, q_entry_reset()), (1, append_d("H"))]);
    Rule::new("2:broadcast", lhs, rhs)
}

/// Rule 3: `(−, H, P | (y, −)) → (−, H, P | (y, H))`.
fn rule_copy() -> Rule {
    let lhs = state_pat(
        ARITY,
        vec![
            (1, Pat::var("H")),
            (
                2,
                Pat::bag(vec![Pat::tuple(vec![Pat::var("y"), Pat::Wild])], "P"),
            ),
        ],
    );
    let rhs = state_rhs(
        ARITY,
        vec![
            (1, Rhs::var("H")),
            (
                2,
                Rhs::bag(vec![Rhs::tuple(vec![Rhs::var("y"), Rhs::var("H")])], "P"),
            ),
        ],
    );
    Rule::new("3:copy", lhs, rhs)
}

/// The rules of System S1.
pub fn system(_n: usize, b: i64) -> Trs {
    Trs::new(vec![rule_request(ARITY, b), rule_broadcast(), rule_copy()])
}

/// Initial state: `(||ₓ (x, φₓ), ∅, ||ₓ (x, ∅))`.
pub fn initial(n: usize) -> Term {
    Term::tuple(vec![q_init(n), Term::empty_seq(), p_init(n)])
}

/// Definition 2 for S1: every local history in `P` is a prefix of `H`.
pub fn prefix_ok(state: &Term) -> bool {
    let h = field(state, 1);
    p_histories(field(state, 2))
        .into_iter()
        .all(|hx| hx.is_prefix_of(h))
}

/// The refinement mapping into System S: forget `P` (the proof of Lemma 1:
/// *"The mapping is trivial, just ignore the values of P"*).
pub fn to_s(state: &Term) -> Term {
    Term::tuple(vec![field(state, 0).clone(), field(state, 1).clone()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_prefix_everywhere;
    use crate::refinement::check_refinement;
    use crate::systems::s;
    use atp_trs::Explorer;

    #[test]
    fn lemma_1_prefix_property_holds_everywhere() {
        let report = check_prefix_everywhere(&system(3, 1), initial(3), prefix_ok, 150_000);
        assert!(report.holds(), "violation: {:?}", report.violation);
        assert!(report.states() > 50);
    }

    #[test]
    fn refines_system_s() {
        let graph = Explorer::with_max_states(150_000).explore(&system(3, 1), initial(3));
        assert!(!graph.is_truncated());
        let abs = s::system(3, 1);
        check_refinement(&graph, &abs, to_s, 1).expect("S1 must refine S");
    }

    #[test]
    fn local_histories_can_lag_arbitrarily() {
        let graph = Explorer::with_max_states(150_000).explore(&system(2, 1), initial(2));
        // Some state has H of length 2 while a local history is still empty.
        let lagging = graph.states().iter().any(|st| {
            field(st, 1).as_seq().unwrap().len() == 2
                && p_histories(field(st, 2))
                    .iter()
                    .any(|h| h.as_seq().unwrap().is_empty())
        });
        assert!(lagging, "laggards should be allowed by rule 3's freedom");
    }
}
