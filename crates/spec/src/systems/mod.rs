//! The six refinement levels, transcribed rule-for-rule from the paper.

pub mod binary;
mod common;
pub mod mp;
pub mod s;
pub mod s1;
pub mod search;
pub mod token;

pub use common::rule_request;
