//! Exhaustive invariant checking over reachable state graphs.

use atp_trs::{Explorer, Graph, Term, Trs};

/// Result of an exhaustive invariant check.
#[derive(Debug)]
pub struct CheckReport {
    /// The explored graph.
    pub graph: Graph,
    /// The first violating state, if any.
    pub violation: Option<Term>,
}

impl CheckReport {
    /// `true` when the invariant held on every reachable state *and* the
    /// exploration was complete (not truncated).
    pub fn holds(&self) -> bool {
        self.violation.is_none() && !self.graph.is_truncated()
    }

    /// `true` when no explored state violated the invariant — *bounded*
    /// model checking: meaningful even if the exploration was truncated.
    pub fn violation_free(&self) -> bool {
        self.violation.is_none()
    }

    /// Number of states explored.
    pub fn states(&self) -> usize {
        self.graph.states().len()
    }
}

/// Explores `trs` from `init` (up to `max_states`) and checks `invariant`
/// on every reachable state.
pub fn check_prefix_everywhere(
    trs: &Trs,
    init: Term,
    invariant: impl Fn(&Term) -> bool,
    max_states: usize,
) -> CheckReport {
    let graph = Explorer::with_max_states(max_states).explore(trs, init);
    let violation = graph.find_violation(&invariant).cloned();
    CheckReport { graph, violation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_trs::{Pat, Rhs, Rule};

    #[test]
    fn report_reflects_violations_and_truncation() {
        let trs = Trs::new(vec![Rule::new(
            "inc",
            Pat::tuple(vec![Pat::var("k")]),
            Rhs::tuple(vec![Rhs::apply("k+1", |s| {
                Term::int(s["k"].as_int().unwrap() + 1)
            })]),
        )
        .with_guard(|s| s["k"].as_int().unwrap() < 5)]);
        let init = Term::tuple(vec![Term::int(0)]);

        let ok = check_prefix_everywhere(&trs, init.clone(), |_| true, 100);
        assert!(ok.holds());
        assert_eq!(ok.states(), 6);

        let bad = check_prefix_everywhere(
            &trs,
            init.clone(),
            |s| s.as_tuple().unwrap()[0].as_int().unwrap() < 3,
            100,
        );
        assert!(!bad.holds());
        assert!(bad.violation.is_some());

        let truncated = check_prefix_everywhere(&trs, init, |_| true, 2);
        assert!(!truncated.holds());
        assert!(truncated.violation.is_none());
    }
}
