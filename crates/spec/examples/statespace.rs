//! Prints reachable state-space sizes for parameter selection.
use atp_spec::systems::{binary, mp, s, s1, search, token};
use atp_trs::Explorer;
use std::time::Instant;

fn size(name: &str, trs: &atp_trs::Trs, init: atp_trs::Term, cap: usize) {
    let t0 = Instant::now();
    let g = Explorer::with_max_states(cap).explore(trs, init);
    println!(
        "{name:<16} states={:<8} edges={:<9} truncated={} ({:?})",
        g.states().len(),
        g.edges().len(),
        g.is_truncated(),
        t0.elapsed()
    );
}

fn main() {
    size("S(3,1)", &s::system(3, 1), s::initial(3), 500_000);
    size("S(3,2)", &s::system(3, 2), s::initial(3), 500_000);
    size("S1(3,1)", &s1::system(3, 1), s1::initial(3), 500_000);
    size("Token(3,1)", &token::system(3, 1), token::initial(3), 500_000);
    size("MP(2,1)", &mp::system(2, 1), mp::initial(2), 500_000);
    size("MP(3,1)", &mp::system(3, 1), mp::initial(3), 500_000);
    size("Search(2,1)", &search::system(2, 1), search::initial(2), 500_000);
    size("Search(3,1)", &search::system(3, 1), search::initial(3), 500_000);
    size("Binary(2,1)", &binary::system(2, 1), binary::initial(2), 500_000);
    size("Binary(3,1)", &binary::system(3, 1), binary::initial(3), 500_000);
}
