//! Probabilistic safety checking on instances too large to exhaust: long
//! seeded random reductions of every system, with the invariants checked at
//! every step. Complements the exhaustive checks in the unit tests (which
//! cover n ≤ 3 completely).

use atp_spec::systems::{binary, mp, s1, search, token};
use atp_trs::{random_reduction, Term, Trs, WalkOutcome};

fn walk_ok(
    name: &str,
    trs: &Trs,
    init: Term,
    steps: usize,
    seeds: std::ops::Range<u64>,
    invariant: impl Fn(&Term) -> bool + Copy,
) {
    for seed in seeds {
        match random_reduction(trs, init.clone(), steps, seed, invariant) {
            WalkOutcome::Violated(state) => {
                panic!("{name}: invariant violated (seed {seed}) at {state}")
            }
            WalkOutcome::Completed | WalkOutcome::Stuck(_) => {}
        }
    }
}

#[test]
fn s1_prefix_holds_on_long_walks_n5() {
    walk_ok(
        "S1(5,2)",
        &s1::system(5, 2),
        s1::initial(5),
        400,
        0..12,
        s1::prefix_ok,
    );
}

#[test]
fn token_prefix_holds_on_long_walks_n5() {
    walk_ok(
        "Token(5,2)",
        &token::system(5, 2),
        token::initial(5),
        400,
        0..12,
        token::prefix_ok,
    );
}

#[test]
fn mp_invariants_hold_on_long_walks_n5() {
    let inv = |st: &Term| mp::prefix_ok(st) && mp::token_unique(st);
    walk_ok("MP(5,2)", &mp::system(5, 2), mp::initial(5), 400, 0..10, inv);
}

#[test]
fn search_invariants_hold_on_long_walks_n5() {
    let inv = |st: &Term| search::prefix_ok(st) && search::token_unique(st);
    walk_ok(
        "Search(5,1)",
        &search::system(5, 1),
        search::initial(5),
        300,
        0..8,
        inv,
    );
}

#[test]
fn binary_invariants_hold_on_long_walks_n6() {
    let inv =
        |st: &Term| binary::prefix_ok(st) && binary::token_unique(st) && binary::ranges_positive(st);
    walk_ok(
        "Binary(6,1)",
        &binary::system(6, 1),
        binary::initial(6),
        300,
        0..8,
        inv,
    );
}

#[test]
fn binary_invariants_hold_on_deep_walk_n4() {
    let inv = |st: &Term| binary::prefix_ok(st) && binary::token_unique(st);
    walk_ok(
        "Binary(4,2)",
        &binary::system(4, 2),
        binary::initial(4),
        1_500,
        0..4,
        inv,
    );
}
