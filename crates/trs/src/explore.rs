//! Bounded state-space exploration and random reductions.

use std::collections::HashMap;

use atp_util::rng::{Rng, SeedableRng, StdRng};

use crate::rule::Trs;
use crate::term::Term;

/// The reachable-state graph of a bounded exploration.
#[derive(Debug, Clone)]
pub struct Graph {
    states: Vec<Term>,
    index: HashMap<Term, usize>,
    /// Edges `(from, rule index, to)`.
    edges: Vec<(usize, usize, usize)>,
    truncated: bool,
}

impl Graph {
    /// The reachable states (index 0 is the initial state).
    pub fn states(&self) -> &[Term] {
        &self.states
    }

    /// The transition edges `(from, rule, to)` by state index.
    pub fn edges(&self) -> &[(usize, usize, usize)] {
        &self.edges
    }

    /// Index of a state, if reachable.
    pub fn index_of(&self, state: &Term) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// Whether exploration hit the state bound before exhausting the space.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Checks `invariant` on every reachable state; returns the first
    /// violating state, if any.
    pub fn find_violation(&self, invariant: impl Fn(&Term) -> bool) -> Option<&Term> {
        self.states.iter().find(|s| !invariant(s))
    }

    /// Renders the graph in Graphviz DOT format, labelling nodes with their
    /// state terms (truncated to `max_label` characters) and edges with rule
    /// names from `rule_names`.
    ///
    /// Intended for visually debugging small explorations:
    /// `dot -Tsvg graph.dot -o graph.svg`.
    pub fn to_dot(&self, rule_names: &[&str], max_label: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph trs {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (i, state) in self.states.iter().enumerate() {
            let mut label = state.to_string();
            if label.chars().count() > max_label {
                label = label.chars().take(max_label).collect::<String>() + "…";
            }
            let label = label.replace('"', "'");
            let style = if i == 0 { ", style=bold" } else { "" };
            let _ = writeln!(out, "  s{i} [label=\"{label}\"{style}];");
        }
        for &(from, rule, to) in &self.edges {
            let name = rule_names.get(rule).copied().unwrap_or("?");
            let _ = writeln!(out, "  s{from} -> s{to} [label=\"{name}\", fontsize=8];");
        }
        out.push_str("}\n");
        out
    }

    /// Terminal (stuck) states: no outgoing edges.
    pub fn stuck_states(&self) -> Vec<&Term> {
        let mut has_out = vec![false; self.states.len()];
        for &(from, _, _) in &self.edges {
            has_out[from] = true;
        }
        self.states
            .iter()
            .zip(has_out)
            .filter(|(_, h)| !h)
            .map(|(s, _)| s)
            .collect()
    }
}

/// Bounded breadth-first exploration of a [`Trs`]'s reachable states.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Stop after this many distinct states.
    pub max_states: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_states: 200_000,
        }
    }
}

impl Explorer {
    /// Creates an explorer with a custom state bound.
    pub fn with_max_states(max_states: usize) -> Self {
        Explorer { max_states }
    }

    /// Explores the reachable graph from `init`.
    pub fn explore(&self, trs: &Trs, init: Term) -> Graph {
        let mut graph = Graph {
            states: vec![init.clone()],
            index: HashMap::from([(init, 0)]),
            edges: Vec::new(),
            truncated: false,
        };
        let mut frontier = vec![0usize];
        while let Some(at) = frontier.pop() {
            let state = graph.states[at].clone();
            for (rule, next) in trs.successors(&state) {
                let to = match graph.index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if graph.states.len() >= self.max_states {
                            graph.truncated = true;
                            continue;
                        }
                        let i = graph.states.len();
                        graph.states.push(next.clone());
                        graph.index.insert(next, i);
                        frontier.push(i);
                        i
                    }
                };
                graph.edges.push((at, rule, to));
            }
        }
        graph
    }
}

/// Outcome of a random reduction (walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Took all requested steps without violating the invariant.
    Completed,
    /// Reached a stuck state (no rule applicable) after this many steps.
    Stuck(usize),
    /// The invariant failed at this state.
    Violated(Term),
}

/// Performs a seeded random reduction of `steps` rule applications from
/// `init`, checking `invariant` after every step.
///
/// This is the probabilistic counterpart of [`Explorer`] for instances too
/// large to exhaust; the paper's "rewriting strategy" picking among
/// applicable rules is here the uniform random strategy.
pub fn random_reduction(
    trs: &Trs,
    init: Term,
    steps: usize,
    seed: u64,
    invariant: impl Fn(&Term) -> bool,
) -> WalkOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = init;
    if !invariant(&state) {
        return WalkOutcome::Violated(state);
    }
    for step in 0..steps {
        let succs = trs.successors(&state);
        if succs.is_empty() {
            return WalkOutcome::Stuck(step);
        }
        let pick = rng.gen_range(0..succs.len());
        state = succs.into_iter().nth(pick).expect("index in range").1;
        if !invariant(&state) {
            return WalkOutcome::Violated(state);
        }
    }
    WalkOutcome::Completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pat;
    use crate::rule::{Rhs, Rule};

    /// Counter mod-free: k → k+1 while k < limit.
    fn counter(limit: i64) -> Trs {
        Trs::new(vec![Rule::new(
            "inc",
            Pat::tuple(vec![Pat::var("k")]),
            Rhs::tuple(vec![Rhs::apply("k+1", |s| {
                Term::int(s["k"].as_int().unwrap() + 1)
            })]),
        )
        .with_guard(move |s| s["k"].as_int().unwrap() < limit)])
    }

    fn start() -> Term {
        Term::tuple(vec![Term::int(0)])
    }

    #[test]
    fn exhaustive_exploration_finds_all_states() {
        let graph = Explorer::default().explore(&counter(5), start());
        assert_eq!(graph.states().len(), 6);
        assert_eq!(graph.edges().len(), 5);
        assert!(!graph.is_truncated());
        assert_eq!(graph.stuck_states().len(), 1);
        assert!(graph.index_of(&Term::tuple(vec![Term::int(3)])).is_some());
    }

    #[test]
    fn dot_export_contains_states_and_rules() {
        let graph = Explorer::default().explore(&counter(2), start());
        let dot = graph.to_dot(&["inc"], 40);
        assert!(dot.starts_with("digraph trs {"));
        assert!(dot.contains("s0 ["));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("inc"));
        assert!(dot.ends_with("}\n"));
        // Long labels are truncated.
        let dot_short = graph.to_dot(&["inc"], 1);
        assert!(dot_short.contains("…"));
    }

    #[test]
    fn truncation_is_reported() {
        let graph = Explorer::with_max_states(3).explore(&counter(100), start());
        assert!(graph.is_truncated());
        assert_eq!(graph.states().len(), 3);
    }

    #[test]
    fn invariant_violations_are_found() {
        let graph = Explorer::default().explore(&counter(5), start());
        let violation = graph.find_violation(|s| s.as_tuple().unwrap()[0].as_int().unwrap() < 4);
        assert!(violation.is_some());
        assert!(graph.find_violation(|_| true).is_none());
    }

    #[test]
    fn random_walk_completes_or_sticks() {
        let trs = counter(10);
        match random_reduction(&trs, start(), 5, 1, |_| true) {
            WalkOutcome::Completed => {}
            other => panic!("expected completion, got {other:?}"),
        }
        match random_reduction(&trs, start(), 100, 1, |_| true) {
            WalkOutcome::Stuck(10) => {}
            other => panic!("expected stuck at 10, got {other:?}"),
        }
    }

    #[test]
    fn random_walk_reports_violation() {
        let trs = counter(10);
        match random_reduction(&trs, start(), 100, 1, |s| {
            s.as_tuple().unwrap()[0].as_int().unwrap() < 3
        }) {
            WalkOutcome::Violated(state) => {
                assert_eq!(state, Term::tuple(vec![Term::int(3)]));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
