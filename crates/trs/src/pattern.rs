//! Pattern matching over terms.
//!
//! The paper's conventions: *"identifiers with upper case letters are
//! variables"* (here: [`Pat::Var`]), *"'−', the wild-card term"* (here:
//! [`Pat::Wild`]), and constants match only themselves. Multiset (`|`)
//! patterns pick out distinguished elements and bind the remainder, exactly
//! like the rule notation `Q | (x, d_x)`.

use std::collections::BTreeMap;

use crate::term::Term;

/// A substitution: variable name → matched term.
pub type Subst = BTreeMap<String, Term>;

/// A pattern over [`Term`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// A variable: matches anything; repeated occurrences must agree
    /// (non-linear patterns are supported).
    Var(String),
    /// The wild-card `−`: matches anything without binding.
    Wild,
    /// A constant symbol: matches only itself.
    Sym(String),
    /// An integer constant.
    Int(i64),
    /// A tuple of sub-patterns (arity must match).
    Tuple(Vec<Pat>),
    /// An exact sequence of sub-patterns (length must match). To match a
    /// whole history of unknown length, bind it with [`Pat::Var`].
    Seq(Vec<Pat>),
    /// A multiset pattern `elem₁ | elem₂ | … | Rest`: matches `elems`
    /// against *distinct* bag elements (in every possible way) and binds the
    /// remaining multiset to `rest` (if named).
    Bag {
        /// Patterns for distinguished elements.
        elems: Vec<Pat>,
        /// Variable capturing the rest of the multiset, if any.
        rest: Option<String>,
    },
}

impl Pat {
    /// A variable pattern.
    pub fn var(name: impl Into<String>) -> Pat {
        Pat::Var(name.into())
    }

    /// A constant-symbol pattern.
    pub fn sym(name: impl Into<String>) -> Pat {
        Pat::Sym(name.into())
    }

    /// An integer pattern.
    pub fn int(v: i64) -> Pat {
        Pat::Int(v)
    }

    /// A tuple pattern.
    pub fn tuple(items: Vec<Pat>) -> Pat {
        Pat::Tuple(items)
    }

    /// A bag pattern with distinguished elements and a rest variable.
    pub fn bag(elems: Vec<Pat>, rest: impl Into<String>) -> Pat {
        Pat::Bag {
            elems,
            rest: Some(rest.into()),
        }
    }

    /// A bag pattern that must account for every element (no rest).
    pub fn bag_exact(elems: Vec<Pat>) -> Pat {
        Pat::Bag { elems, rest: None }
    }
}

/// Returns every substitution under which `pat` matches `term`.
///
/// The result is empty when there is no match; multiset patterns can match
/// in several ways and each way yields one substitution.
pub fn matches(pat: &Pat, term: &Term) -> Vec<Subst> {
    let mut out = Vec::new();
    match_into(pat, term, Subst::new(), &mut out);
    out
}

fn bind(mut subst: Subst, name: &str, term: &Term, out: &mut Vec<Subst>) {
    match subst.get(name) {
        Some(existing) if existing != term => {}
        Some(_) => out.push(subst),
        None => {
            subst.insert(name.to_string(), term.clone());
            out.push(subst);
        }
    }
}

fn match_into(pat: &Pat, term: &Term, subst: Subst, out: &mut Vec<Subst>) {
    match pat {
        Pat::Wild => out.push(subst),
        Pat::Var(name) => bind(subst, name, term, out),
        Pat::Sym(s) => {
            if term.as_sym() == Some(s.as_str()) {
                out.push(subst);
            }
        }
        Pat::Int(v) => {
            if term.as_int() == Some(*v) {
                out.push(subst);
            }
        }
        Pat::Tuple(pats) => {
            if let Term::Tuple(items) = term {
                if items.len() == pats.len() {
                    match_all(pats, items, subst, out);
                }
            }
        }
        Pat::Seq(pats) => {
            if let Term::Seq(items) = term {
                if items.len() == pats.len() {
                    match_all(pats, items, subst, out);
                }
            }
        }
        Pat::Bag { elems, rest } => {
            if let Term::Bag(items) = term {
                if elems.len() > items.len() {
                    return;
                }
                let mut used = vec![false; items.len()];
                match_bag(elems, rest.as_deref(), items, &mut used, subst, out);
            }
        }
    }
}

fn match_all(pats: &[Pat], items: &[Term], subst: Subst, out: &mut Vec<Subst>) {
    if pats.is_empty() {
        out.push(subst);
        return;
    }
    let mut partial = Vec::new();
    match_into(&pats[0], &items[0], subst, &mut partial);
    for s in partial {
        match_all(&pats[1..], &items[1..], s, out);
    }
}

fn match_bag(
    elems: &[Pat],
    rest: Option<&str>,
    items: &[Term],
    used: &mut Vec<bool>,
    subst: Subst,
    out: &mut Vec<Subst>,
) {
    if elems.is_empty() {
        let leftover: Vec<Term> = items
            .iter()
            .zip(used.iter())
            .filter(|(_, &u)| !u)
            .map(|(t, _)| t.clone())
            .collect();
        match rest {
            None => {
                if leftover.is_empty() {
                    out.push(subst);
                }
            }
            Some(name) => bind(subst, name, &Term::bag(leftover), out),
        }
        return;
    }
    for i in 0..items.len() {
        if used[i] {
            continue;
        }
        let mut partial = Vec::new();
        match_into(&elems[0], &items[i], subst.clone(), &mut partial);
        if !partial.is_empty() {
            used[i] = true;
            for s in partial {
                match_bag(&elems[1..], rest, items, used, s, out);
            }
            used[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(x: i64, d: &str) -> Term {
        Term::tuple(vec![Term::int(x), Term::sym(d)])
    }

    #[test]
    fn constants_match_themselves_only() {
        assert_eq!(matches(&Pat::sym("tau"), &Term::sym("tau")).len(), 1);
        assert!(matches(&Pat::sym("tau"), &Term::sym("phi")).is_empty());
        assert_eq!(matches(&Pat::int(3), &Term::int(3)).len(), 1);
        assert!(matches(&Pat::int(3), &Term::int(4)).is_empty());
    }

    #[test]
    fn variables_bind_and_wildcards_do_not() {
        let t = Term::int(5);
        let m = matches(&Pat::var("X"), &t);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["X"], Term::int(5));
        let m = matches(&Pat::Wild, &t);
        assert_eq!(m.len(), 1);
        assert!(m[0].is_empty());
    }

    #[test]
    fn non_linear_patterns_require_agreement() {
        let p = Pat::tuple(vec![Pat::var("X"), Pat::var("X")]);
        assert_eq!(
            matches(&p, &Term::tuple(vec![Term::int(1), Term::int(1)])).len(),
            1
        );
        assert!(matches(&p, &Term::tuple(vec![Term::int(1), Term::int(2)])).is_empty());
    }

    #[test]
    fn bag_pattern_enumerates_all_choices() {
        // Q | (x, d) against a bag of three pairs: three ways to pick.
        let bag = Term::bag(vec![pair(0, "a"), pair(1, "b"), pair(2, "c")]);
        let p = Pat::bag(
            vec![Pat::tuple(vec![Pat::var("x"), Pat::var("d")])],
            "Q",
        );
        let m = matches(&p, &bag);
        assert_eq!(m.len(), 3);
        let xs: Vec<i64> = m.iter().map(|s| s["x"].as_int().unwrap()).collect();
        let mut xs = xs;
        xs.sort_unstable();
        assert_eq!(xs, vec![0, 1, 2]);
        // Rest has the two unchosen pairs.
        for s in &m {
            assert_eq!(s["Q"].as_bag().unwrap().len(), 2);
        }
    }

    #[test]
    fn bag_pattern_picks_distinct_elements() {
        let bag = Term::bag(vec![pair(0, "a"), pair(1, "b")]);
        let p = Pat::bag(
            vec![
                Pat::tuple(vec![Pat::var("x"), Pat::Wild]),
                Pat::tuple(vec![Pat::var("y"), Pat::Wild]),
            ],
            "rest",
        );
        let m = matches(&p, &bag);
        // (x=0,y=1) and (x=1,y=0).
        assert_eq!(m.len(), 2);
        for s in &m {
            assert_ne!(s["x"], s["y"]);
            assert!(s["rest"].as_bag().unwrap().is_empty());
        }
    }

    #[test]
    fn bag_exact_requires_full_coverage() {
        let bag = Term::bag(vec![Term::int(1), Term::int(2)]);
        let p = Pat::bag_exact(vec![Pat::var("a"), Pat::var("b")]);
        assert_eq!(matches(&p, &bag).len(), 2);
        let p_short = Pat::bag_exact(vec![Pat::var("a")]);
        assert!(matches(&p_short, &bag).is_empty());
    }

    #[test]
    fn seq_patterns_are_exact_length() {
        let s = Term::seq(vec![Term::int(1), Term::int(2)]);
        assert_eq!(
            matches(&Pat::Seq(vec![Pat::var("a"), Pat::var("b")]), &s).len(),
            1
        );
        assert!(matches(&Pat::Seq(vec![Pat::var("a")]), &s).is_empty());
    }

    #[test]
    fn tuple_arity_must_match() {
        let t = Term::tuple(vec![Term::int(1)]);
        assert!(matches(&Pat::tuple(vec![Pat::Wild, Pat::Wild]), &t).is_empty());
    }

    #[test]
    fn variable_shared_between_bag_and_field() {
        // (T, Q | (T, d)): the token holder must have a queue entry.
        let state = Term::tuple(vec![
            Term::int(1),
            Term::bag(vec![pair(0, "a"), pair(1, "b")]),
        ]);
        let p = Pat::tuple(vec![
            Pat::var("T"),
            Pat::bag(vec![Pat::tuple(vec![Pat::var("T"), Pat::var("d")])], "Q"),
        ]);
        let m = matches(&p, &state);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["d"], Term::sym("b"));
    }
}
