//! Rewrite rules and rule systems.

use std::fmt;
use std::sync::Arc;

use crate::pattern::{matches, Pat, Subst};
use crate::term::Term;

/// A rule guard: a predicate over the matched substitution.
pub type Guard = Arc<dyn Fn(&Subst) -> bool + Send + Sync>;

/// A right-hand-side template, instantiated under a substitution.
///
/// Besides the structural constructors mirroring [`Pat`], [`Rhs::Apply`]
/// embeds a computed term — how operations like the history append `H ⊕ d_x`
/// or the ring arithmetic `x⁺ⁿ/²` enter the otherwise syntactic rules.
#[derive(Clone)]
pub enum Rhs {
    /// Splice the binding of a variable.
    Var(String),
    /// A constant symbol.
    Sym(String),
    /// An integer constant.
    Int(i64),
    /// A tuple of sub-templates.
    Tuple(Vec<Rhs>),
    /// A sequence of sub-templates.
    Seq(Vec<Rhs>),
    /// A bag: the given elements plus (optionally) the contents of a bag
    /// variable spliced in (the `Q | (x, …)` reconstruction).
    Bag {
        /// Element templates.
        elems: Vec<Rhs>,
        /// Bag variable whose elements are merged in.
        rest: Option<String>,
    },
    /// A computed term (named for debuggability).
    Apply(String, Arc<dyn Fn(&Subst) -> Term + Send + Sync>),
}

impl fmt::Debug for Rhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rhs::Var(v) => write!(f, "Var({v})"),
            Rhs::Sym(s) => write!(f, "Sym({s})"),
            Rhs::Int(v) => write!(f, "Int({v})"),
            Rhs::Tuple(items) => f.debug_tuple("Tuple").field(items).finish(),
            Rhs::Seq(items) => f.debug_tuple("Seq").field(items).finish(),
            Rhs::Bag { elems, rest } => f
                .debug_struct("Bag")
                .field("elems", elems)
                .field("rest", rest)
                .finish(),
            Rhs::Apply(name, _) => write!(f, "Apply({name})"),
        }
    }
}

impl Rhs {
    /// Splice a variable's binding.
    pub fn var(name: impl Into<String>) -> Rhs {
        Rhs::Var(name.into())
    }

    /// A constant symbol.
    pub fn sym(name: impl Into<String>) -> Rhs {
        Rhs::Sym(name.into())
    }

    /// A tuple template.
    pub fn tuple(items: Vec<Rhs>) -> Rhs {
        Rhs::Tuple(items)
    }

    /// A bag template with spliced rest variable.
    pub fn bag(elems: Vec<Rhs>, rest: impl Into<String>) -> Rhs {
        Rhs::Bag {
            elems,
            rest: Some(rest.into()),
        }
    }

    /// A computed term.
    pub fn apply(
        name: impl Into<String>,
        f: impl Fn(&Subst) -> Term + Send + Sync + 'static,
    ) -> Rhs {
        Rhs::Apply(name.into(), Arc::new(f))
    }

    /// Instantiates the template under `subst`.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is unbound, or a bag rest variable is
    /// bound to a non-bag — both indicate a malformed rule.
    pub fn instantiate(&self, subst: &Subst) -> Term {
        match self {
            Rhs::Var(name) => subst
                .get(name)
                .unwrap_or_else(|| panic!("unbound variable {name} in rhs"))
                .clone(),
            Rhs::Sym(s) => Term::sym(s.clone()),
            Rhs::Int(v) => Term::int(*v),
            Rhs::Tuple(items) => Term::tuple(items.iter().map(|r| r.instantiate(subst)).collect()),
            Rhs::Seq(items) => Term::seq(items.iter().map(|r| r.instantiate(subst)).collect()),
            Rhs::Bag { elems, rest } => {
                let mut items: Vec<Term> = elems.iter().map(|r| r.instantiate(subst)).collect();
                if let Some(rest) = rest {
                    let bound = subst
                        .get(rest)
                        .unwrap_or_else(|| panic!("unbound bag variable {rest} in rhs"));
                    let Term::Bag(more) = bound else {
                        panic!("bag variable {rest} bound to non-bag {bound}");
                    };
                    items.extend(more.iter().cloned());
                }
                Term::bag(items)
            }
            Rhs::Apply(_, f) => f(subst),
        }
    }
}

/// A guarded rewrite rule `lhs → rhs (if guard)`.
#[derive(Clone)]
pub struct Rule {
    name: String,
    lhs: Pat,
    rhs: Rhs,
    guard: Option<Guard>,
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("guarded", &self.guard.is_some())
            .finish()
    }
}

impl Rule {
    /// Creates an unguarded rule.
    pub fn new(name: impl Into<String>, lhs: Pat, rhs: Rhs) -> Self {
        Rule {
            name: name.into(),
            lhs,
            rhs,
            guard: None,
        }
    }

    /// Attaches a guard predicate over the matched substitution.
    pub fn with_guard(mut self, guard: impl Fn(&Subst) -> bool + Send + Sync + 'static) -> Self {
        self.guard = Some(Arc::new(guard));
        self
    }

    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All one-step rewrites of `state` by this rule.
    pub fn apply(&self, state: &Term) -> Vec<Term> {
        matches(&self.lhs, state)
            .into_iter()
            .filter(|s| self.guard.as_ref().is_none_or(|g| g(s)))
            .map(|s| self.rhs.instantiate(&s))
            .collect()
    }
}

/// A term rewriting system: a set of rules applied to whole states.
///
/// The paper rewrites the global state tuple, so rule application here is at
/// the root only (sub-term rewriting is not needed and would obscure the
/// state-transition reading).
#[derive(Debug, Clone, Default)]
pub struct Trs {
    rules: Vec<Rule>,
}

impl Trs {
    /// Creates a system from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Trs { rules }
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// All one-step successors of `state`, deduplicated, with the index of
    /// the rule that produced each.
    pub fn successors(&self, state: &Term) -> Vec<(usize, Term)> {
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            for next in rule.apply(state) {
                if !out.iter().any(|(_, t)| *t == next) {
                    out.push((i, next));
                }
            }
        }
        out
    }

    /// Whether any rule applies to `state`.
    pub fn can_step(&self, state: &Term) -> bool {
        self.rules.iter().any(|r| !r.apply(state).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (counter, log) with two rules: inc and record.
    fn demo_trs() -> Trs {
        let inc = Rule::new(
            "inc",
            Pat::tuple(vec![Pat::var("k"), Pat::var("log")]),
            Rhs::tuple(vec![
                Rhs::apply("k+1", |s| Term::int(s["k"].as_int().unwrap() + 1)),
                Rhs::var("log"),
            ]),
        )
        .with_guard(|s| s["k"].as_int().unwrap() < 2);
        let record = Rule::new(
            "record",
            Pat::tuple(vec![Pat::var("k"), Pat::var("log")]),
            Rhs::tuple(vec![
                Rhs::var("k"),
                Rhs::apply("log⊕k", |s| s["log"].append(&s["k"])),
            ]),
        )
        .with_guard(|s| {
            let k = s["k"].as_int().unwrap();
            let log = s["log"].as_seq().unwrap();
            log.last().and_then(Term::as_int) != Some(k)
        });
        Trs::new(vec![inc, record])
    }

    fn init() -> Term {
        Term::tuple(vec![Term::int(0), Term::empty_seq()])
    }

    #[test]
    fn rules_apply_and_respect_guards() {
        let trs = demo_trs();
        let succs = trs.successors(&init());
        assert_eq!(succs.len(), 2); // inc and record both apply
        let stuck = Term::tuple(vec![Term::int(2), Term::seq(vec![Term::int(2)])]);
        // inc guard fails (k = 2), record guard fails (last = k).
        assert!(!trs.can_step(&stuck));
    }

    #[test]
    fn rhs_instantiation_builds_terms() {
        let mut s = Subst::new();
        s.insert("x".into(), Term::int(4));
        s.insert("Q".into(), Term::bag(vec![Term::int(9)]));
        let rhs = Rhs::bag(vec![Rhs::var("x"), Rhs::Int(5)], "Q");
        assert_eq!(
            rhs.instantiate(&s),
            Term::bag(vec![Term::int(4), Term::int(5), Term::int(9)])
        );
        let rhs = Rhs::tuple(vec![Rhs::sym("bot"), Rhs::Seq(vec![Rhs::var("x")])]);
        assert_eq!(
            rhs.instantiate(&s),
            Term::tuple(vec![Term::sym("bot"), Term::seq(vec![Term::int(4)])])
        );
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn unbound_variable_panics() {
        Rhs::var("nope").instantiate(&Subst::new());
    }

    #[test]
    fn successors_deduplicate() {
        // Two bag elements that produce the same successor term.
        let rule = Rule::new(
            "drop",
            Pat::bag(vec![Pat::Wild], "rest"),
            Rhs::var("rest"),
        );
        let trs = Trs::new(vec![rule]);
        let state = Term::bag(vec![Term::int(1), Term::int(1)]);
        // Dropping either copy leaves {1}: one successor after dedup.
        assert_eq!(trs.successors(&state).len(), 1);
    }

    #[test]
    fn rule_and_rhs_debug() {
        let rule = demo_trs().rules()[0].clone();
        assert!(format!("{rule:?}").contains("inc"));
        assert!(format!("{:?}", Rhs::apply("f", |_| Term::int(0))).contains("Apply(f)"));
    }
}
