//! # atp-trs — an executable Term Rewriting System engine
//!
//! The paper develops its protocols inside a Term Rewriting System: *"A TRS
//! `T = (Σ, R)` consists of a set of terms `Σ` and a set of rewriting rules
//! `R`. The terms represent system states and the rules specify state
//! transitions."* This crate makes that framework executable so the paper's
//! safety arguments become machine-checked facts instead of proof sketches:
//!
//! * [`Term`] — symbols, integers, tuples, ordered sequences (histories with
//!   the `⊕` append), and **multisets** (the paper's associative-commutative
//!   `|` catenation).
//! * [`Pat`] / [`matches()`](fn@matches) — pattern matching with variables, wildcards
//!   (`−`), and multiset patterns with rest-capture; multiset matching
//!   enumerates *all* injective assignments, as rule applicability demands.
//! * [`Rule`] / [`Trs`] — guarded rewrite rules over whole states, with
//!   computed right-hand sides for operations like `H ⊕ d_x`.
//! * [`Explorer`] — bounded breadth-first exploration of the reachable state
//!   graph, for exhaustively checking invariants (the prefix property) and
//!   simulation relations (each refinement step) on small instances.
//! * [`random_reduction`] / [`Strategy`] — seeded random walks and
//!   pluggable rewriting strategies for probabilistic checking of larger
//!   instances.
//!
//! ```rust
//! use atp_trs::{Term, Pat, Rhs, Rule, Trs, Explorer};
//!
//! // A one-rule counter: (k) → (k+1) while k < 3.
//! let rule = Rule::new(
//!     "inc",
//!     Pat::tuple(vec![Pat::var("k")]),
//!     Rhs::tuple(vec![Rhs::apply("k+1", |s| {
//!         Term::int(s["k"].as_int().unwrap() + 1)
//!     })]),
//! )
//! .with_guard(|s| s["k"].as_int().unwrap() < 3);
//!
//! let trs = Trs::new(vec![rule]);
//! let graph = Explorer::default().explore(&trs, Term::tuple(vec![Term::int(0)]));
//! assert_eq!(graph.states().len(), 4); // k = 0, 1, 2, 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod pattern;
mod rule;
mod strategy;
mod term;

pub use explore::{random_reduction, Explorer, Graph, WalkOutcome};
pub use pattern::{matches, Pat, Subst};
pub use rule::{Rhs, Rule, Trs};
pub use strategy::{reduce, PriorityStrategy, RandomStrategy, RoundRobinStrategy, Strategy};
pub use term::Term;
