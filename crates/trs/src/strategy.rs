//! Rewriting strategies.
//!
//! The paper: *"If several rules are applicable, then any one of them may be
//! applied. A rewriting strategy can be used to specify which rule among the
//! applicable rules should be applied at each rewriting step."* This module
//! makes strategies first-class: a [`Strategy`] picks among the applicable
//! `(rule, successor)` candidates and [`reduce`] drives a reduction under
//! it, checking an invariant at every step.

use atp_util::rng::{Rng, SeedableRng, StdRng};

use crate::explore::WalkOutcome;
use crate::rule::Trs;
use crate::term::Term;

/// Picks which applicable rewrite to take.
pub trait Strategy {
    /// Chooses an index into `candidates` (pairs of rule index and successor
    /// state), or `None` to halt the reduction.
    ///
    /// `candidates` is never empty when called.
    fn choose(&mut self, state: &Term, candidates: &[(usize, Term)]) -> Option<usize>;
}

/// Uniformly random choice (the strategy behind
/// [`random_reduction`](crate::random_reduction)).
#[derive(Debug)]
pub struct RandomStrategy {
    rng: StdRng,
}

impl RandomStrategy {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomStrategy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn choose(&mut self, _state: &Term, candidates: &[(usize, Term)]) -> Option<usize> {
        Some(self.rng.gen_range(0..candidates.len()))
    }
}

/// Always applies the applicable rule with the lowest index — the textual
/// rule order becomes a priority. With the paper's systems this yields an
/// "eager" schedule (e.g. requests before broadcasts before transfers).
#[derive(Debug, Default, Clone, Copy)]
pub struct PriorityStrategy;

impl Strategy for PriorityStrategy {
    fn choose(&mut self, _state: &Term, candidates: &[(usize, Term)]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, (rule, _))| *rule)
            .map(|(i, _)| i)
    }
}

/// Round-robin over rule indices: repeatedly cycles through the rules,
/// taking the next applicable one — a crude fairness schedule that prevents
/// any single rule from firing forever while others are enabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinStrategy {
    cursor: usize,
}

impl Strategy for RoundRobinStrategy {
    fn choose(&mut self, _state: &Term, candidates: &[(usize, Term)]) -> Option<usize> {
        let pick = candidates
            .iter()
            .enumerate()
            .filter(|(_, (rule, _))| *rule >= self.cursor)
            .min_by_key(|(_, (rule, _))| *rule)
            .or_else(|| {
                candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (rule, _))| *rule)
            })
            .map(|(i, _)| i)?;
        self.cursor = candidates[pick].0 + 1;
        Some(pick)
    }
}

/// Drives a reduction of up to `steps` rewrites under `strategy`, checking
/// `invariant` after every step (and on the initial state).
pub fn reduce(
    trs: &Trs,
    init: Term,
    steps: usize,
    strategy: &mut dyn Strategy,
    invariant: impl Fn(&Term) -> bool,
) -> WalkOutcome {
    let mut state = init;
    if !invariant(&state) {
        return WalkOutcome::Violated(state);
    }
    for step in 0..steps {
        let candidates = trs.successors(&state);
        if candidates.is_empty() {
            return WalkOutcome::Stuck(step);
        }
        let Some(pick) = strategy.choose(&state, &candidates) else {
            return WalkOutcome::Stuck(step);
        };
        state = candidates
            .into_iter()
            .nth(pick)
            .expect("strategy picked a valid index")
            .1;
        if !invariant(&state) {
            return WalkOutcome::Violated(state);
        }
    }
    WalkOutcome::Completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pat;
    use crate::rule::{Rhs, Rule};

    /// Two rules: inc-a bumps field 0, inc-b bumps field 1; both capped.
    fn two_counters(cap: i64) -> Trs {
        let mk = |name: &str, field: usize| {
            Rule::new(
                name.to_string(),
                Pat::tuple(vec![Pat::var("a"), Pat::var("b")]),
                Rhs::tuple(vec![
                    if field == 0 {
                        Rhs::apply("a+1", |s| Term::int(s["a"].as_int().unwrap() + 1))
                    } else {
                        Rhs::var("a")
                    },
                    if field == 1 {
                        Rhs::apply("b+1", |s| Term::int(s["b"].as_int().unwrap() + 1))
                    } else {
                        Rhs::var("b")
                    },
                ]),
            )
            .with_guard(move |s| {
                let v = if field == 0 { &s["a"] } else { &s["b"] };
                v.as_int().unwrap() < cap
            })
        };
        Trs::new(vec![mk("inc-a", 0), mk("inc-b", 1)])
    }

    fn start() -> Term {
        Term::tuple(vec![Term::int(0), Term::int(0)])
    }

    #[test]
    fn priority_strategy_starves_lower_priority_rules() {
        // inc-a always wins until its guard fails, only then inc-b runs.
        let mut strat = PriorityStrategy;
        let outcome = reduce(&two_counters(3), start(), 100, &mut strat, |_| true);
        assert_eq!(outcome, WalkOutcome::Stuck(6)); // 3 + 3 steps then stuck
    }

    #[test]
    fn round_robin_interleaves_rules() {
        let mut strat = RoundRobinStrategy::default();
        // After two steps both counters should have advanced once.
        let trs = two_counters(10);
        let mut state = start();
        for _ in 0..2 {
            let cands = trs.successors(&state);
            let pick = strat.choose(&state, &cands).unwrap();
            state = cands.into_iter().nth(pick).unwrap().1;
        }
        assert_eq!(state, Term::tuple(vec![Term::int(1), Term::int(1)]));
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let run = |seed| {
            let mut strat = RandomStrategy::new(seed);
            let trs = two_counters(5);
            let mut state = start();
            for _ in 0..6 {
                let cands = trs.successors(&state);
                if cands.is_empty() {
                    break;
                }
                let pick = strat.choose(&state, &cands).unwrap();
                state = cands.into_iter().nth(pick).unwrap().1;
            }
            state
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn reduce_reports_violations() {
        let mut strat = PriorityStrategy;
        let outcome = reduce(&two_counters(5), start(), 100, &mut strat, |s| {
            s.as_tuple().unwrap()[0].as_int().unwrap() < 2
        });
        assert!(matches!(outcome, WalkOutcome::Violated(_)));
    }
}
