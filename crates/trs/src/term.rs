//! Terms: the state language of the rewriting systems.

use std::fmt;

/// A term of the rewriting system.
///
/// The constructors mirror the paper's notation:
///
/// * [`Term::Sym`] — constants (the Greek-letter identifiers: `φ_x`, `τ_x`,
///   `⊥`, …);
/// * [`Term::Int`] — node identifiers and counters;
/// * [`Term::Tuple`] — ordered grouping, e.g. the whole state `(Q, H, P, T)`
///   or a pair `(x, d_x)`;
/// * [`Term::Seq`] — ordered sequences: histories under the append operator
///   `⊕` (the empty `Seq` is the left identity, like `φ_x`);
/// * [`Term::Bag`] — multisets under the associative-commutative catenation
///   `|`. Bags are kept in canonical (sorted) form so structurally equal
///   states compare equal regardless of construction order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A constant symbol.
    Sym(String),
    /// An integer (node ids, counters).
    Int(i64),
    /// An ordered fixed-arity grouping.
    Tuple(Vec<Term>),
    /// An ordered, growable sequence (history).
    Seq(Vec<Term>),
    /// A multiset in canonical sorted order.
    Bag(Vec<Term>),
}

impl Term {
    /// A constant symbol.
    pub fn sym(name: impl Into<String>) -> Term {
        Term::Sym(name.into())
    }

    /// An integer.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// An ordered tuple.
    pub fn tuple(items: Vec<Term>) -> Term {
        Term::Tuple(items)
    }

    /// An ordered sequence.
    pub fn seq(items: Vec<Term>) -> Term {
        Term::Seq(items)
    }

    /// The empty sequence (the paper's `∅` / `φ_x` left identity).
    pub fn empty_seq() -> Term {
        Term::Seq(Vec::new())
    }

    /// A multiset; the elements are canonicalized by sorting.
    pub fn bag(mut items: Vec<Term>) -> Term {
        items.sort();
        Term::Bag(items)
    }

    /// Reads an integer out of the term.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Term::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a symbol name out of the term.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Term::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of a sequence.
    pub fn as_seq(&self) -> Option<&[Term]> {
        match self {
            Term::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The elements of a bag (canonical order).
    pub fn as_bag(&self) -> Option<&[Term]> {
        match self {
            Term::Bag(items) => Some(items),
            _ => None,
        }
    }

    /// The fields of a tuple.
    pub fn as_tuple(&self) -> Option<&[Term]> {
        match self {
            Term::Tuple(items) => Some(items),
            _ => None,
        }
    }

    /// The paper's append `⊕`: `self ⊕ other` where both are sequences;
    /// appending a whole sequence concatenates (so the empty sequence is the
    /// left and right identity), and appending a non-sequence pushes one
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a sequence.
    pub fn append(&self, other: &Term) -> Term {
        let Term::Seq(items) = self else {
            panic!("append on a non-sequence term: {self}");
        };
        let mut items = items.clone();
        match other {
            Term::Seq(tail) => items.extend(tail.iter().cloned()),
            one => items.push(one.clone()),
        }
        Term::Seq(items)
    }

    /// Whether `self` is a prefix of `other` (both sequences).
    pub fn is_prefix_of(&self, other: &Term) -> bool {
        match (self, other) {
            (Term::Seq(a), Term::Seq(b)) => a.len() <= b.len() && a[..] == b[..a.len()],
            _ => false,
        }
    }

    /// Inserts an element into a bag, preserving canonical order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a bag.
    pub fn bag_insert(&self, element: Term) -> Term {
        let Term::Bag(items) = self else {
            panic!("bag_insert on a non-bag term: {self}");
        };
        let mut items = items.clone();
        let pos = items.partition_point(|e| *e <= element);
        items.insert(pos, element);
        Term::Bag(items)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, items: &[Term], sep: &str) -> fmt::Result {
            for (i, t) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, "{sep}")?;
                }
                write!(f, "{t}")?;
            }
            Ok(())
        }
        match self {
            Term::Sym(s) => write!(f, "{s}"),
            Term::Int(v) => write!(f, "{v}"),
            Term::Tuple(items) => {
                write!(f, "(")?;
                list(f, items, ", ")?;
                write!(f, ")")
            }
            Term::Seq(items) => {
                write!(f, "[")?;
                list(f, items, "⊕")?;
                write!(f, "]")
            }
            Term::Bag(items) => {
                write!(f, "{{")?;
                list(f, items, "|")?;
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bags_are_canonical() {
        let a = Term::bag(vec![Term::int(2), Term::int(1)]);
        let b = Term::bag(vec![Term::int(1), Term::int(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn append_semantics() {
        let h = Term::seq(vec![Term::int(1)]);
        let extended = h.append(&Term::int(2));
        assert_eq!(extended, Term::seq(vec![Term::int(1), Term::int(2)]));
        // Appending a sequence concatenates; empty is identity.
        let concat = h.append(&Term::seq(vec![Term::int(3), Term::int(4)]));
        assert_eq!(
            concat,
            Term::seq(vec![Term::int(1), Term::int(3), Term::int(4)])
        );
        assert_eq!(h.append(&Term::empty_seq()), h);
    }

    #[test]
    fn prefix_relation() {
        let a = Term::seq(vec![Term::int(1), Term::int(2)]);
        let b = Term::seq(vec![Term::int(1), Term::int(2), Term::int(3)]);
        let c = Term::seq(vec![Term::int(9)]);
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(!c.is_prefix_of(&b));
        assert!(Term::empty_seq().is_prefix_of(&a));
        assert!(!Term::int(1).is_prefix_of(&a));
    }

    #[test]
    fn bag_insert_keeps_order() {
        let b = Term::bag(vec![Term::int(1), Term::int(3)]);
        let b2 = b.bag_insert(Term::int(2));
        assert_eq!(
            b2,
            Term::bag(vec![Term::int(1), Term::int(2), Term::int(3)])
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::int(7).as_int(), Some(7));
        assert_eq!(Term::sym("tau").as_sym(), Some("tau"));
        assert!(Term::int(7).as_sym().is_none());
        assert_eq!(Term::seq(vec![Term::int(1)]).as_seq().unwrap().len(), 1);
        assert_eq!(Term::bag(vec![Term::int(1)]).as_bag().unwrap().len(), 1);
        assert_eq!(Term::tuple(vec![Term::int(1)]).as_tuple().unwrap().len(), 1);
    }

    #[test]
    fn display_forms() {
        let t = Term::tuple(vec![
            Term::bag(vec![Term::int(1), Term::sym("tau")]),
            Term::seq(vec![Term::int(2), Term::int(3)]),
        ]);
        // Bags display in canonical order (symbols sort before ints per the
        // derived Ord on the enum).
        assert_eq!(t.to_string(), "({tau|1}, [2⊕3])");
    }

    #[test]
    #[should_panic(expected = "non-sequence")]
    fn append_on_non_seq_panics() {
        let _ = Term::int(1).append(&Term::int(2));
    }
}
