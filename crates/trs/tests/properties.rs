//! Property-based tests of the term-rewriting engine.

use atp_trs::{matches, Pat, Rhs, Rule, Term, Trs};
use proptest::prelude::*;

/// A small recursive term generator.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0i64..5).prop_map(Term::int),
        prop_oneof![Just("a"), Just("b"), Just("tau")].prop_map(Term::sym),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Term::tuple),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Term::seq),
            proptest::collection::vec(inner, 0..4).prop_map(Term::bag),
        ]
    })
}

proptest! {
    /// Bags are canonical: construction order never matters.
    #[test]
    fn bag_canonical_under_permutation(items in proptest::collection::vec(arb_term(), 0..6)) {
        let forward = Term::bag(items.clone());
        let mut reversed_items = items;
        reversed_items.reverse();
        let reversed = Term::bag(reversed_items);
        prop_assert_eq!(forward, reversed);
    }

    /// A variable pattern matches anything, binding the whole term.
    #[test]
    fn variable_matches_everything(t in arb_term()) {
        let m = matches(&Pat::var("X"), &t);
        prop_assert_eq!(m.len(), 1);
        prop_assert_eq!(&m[0]["X"], &t);
    }

    /// Substituting a matched variable back reproduces the term:
    /// instantiate ∘ match = id.
    #[test]
    fn match_then_instantiate_roundtrips(t in arb_term()) {
        let m = matches(&Pat::var("X"), &t);
        let rebuilt = Rhs::var("X").instantiate(&m[0]);
        prop_assert_eq!(rebuilt, t);
    }

    /// Picking one element out of a bag yields one match per element
    /// occurrence (duplicates give equal substitutions — exactly the
    /// multiset semantics of `|`), and every rest has size len-1.
    #[test]
    fn bag_single_pick_counts(items in proptest::collection::vec(0i64..4, 1..6)) {
        let bag = Term::bag(items.iter().copied().map(Term::int).collect());
        let m = matches(&Pat::bag(vec![Pat::var("e")], "rest"), &bag);
        prop_assert_eq!(m.len(), items.len());
        let distinct_substs: std::collections::BTreeSet<String> =
            m.iter().map(|s| format!("{s:?}")).collect();
        let mut distinct = items.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct_substs.len(), distinct.len());
        for s in &m {
            prop_assert_eq!(s["rest"].as_bag().unwrap().len(), items.len() - 1);
        }
    }

    /// Picking two distinct elements yields k·(k−1) ordered assignments for
    /// k distinct values (each unordered pair in both orders).
    #[test]
    fn bag_double_pick_counts(items in proptest::collection::hash_set(0i64..8, 2..6)) {
        let k = items.len();
        let bag = Term::bag(items.into_iter().map(Term::int).collect());
        let m = matches(
            &Pat::bag(vec![Pat::var("x"), Pat::var("y")], "rest"),
            &bag,
        );
        prop_assert_eq!(m.len(), k * (k - 1));
        for s in &m {
            prop_assert_ne!(&s["x"], &s["y"]);
        }
    }

    /// The append operator is associative with the empty sequence as the
    /// identity (the paper's `⊕` with `φ_x`).
    #[test]
    fn append_monoid_laws(
        a in proptest::collection::vec(0i64..5, 0..5),
        b in proptest::collection::vec(0i64..5, 0..5),
        c in proptest::collection::vec(0i64..5, 0..5),
    ) {
        let seq = |v: &Vec<i64>| Term::seq(v.iter().copied().map(Term::int).collect());
        let (ta, tb, tc) = (seq(&a), seq(&b), seq(&c));
        // Identity.
        prop_assert_eq!(ta.append(&Term::empty_seq()), ta.clone());
        prop_assert_eq!(Term::empty_seq().append(&ta), ta.clone());
        // Associativity.
        prop_assert_eq!(
            ta.append(&tb).append(&tc),
            ta.append(&tb.append(&tc))
        );
    }

    /// `is_prefix_of` is a partial order: reflexive, antisymmetric (up to
    /// equality), transitive.
    #[test]
    fn prefix_is_partial_order(
        a in proptest::collection::vec(0i64..3, 0..6),
        b in proptest::collection::vec(0i64..3, 0..6),
        c in proptest::collection::vec(0i64..3, 0..6),
    ) {
        let seq = |v: &Vec<i64>| Term::seq(v.iter().copied().map(Term::int).collect());
        let (ta, tb, tc) = (seq(&a), seq(&b), seq(&c));
        prop_assert!(ta.is_prefix_of(&ta));
        if ta.is_prefix_of(&tb) && tb.is_prefix_of(&ta) {
            prop_assert_eq!(&ta, &tb);
        }
        if ta.is_prefix_of(&tb) && tb.is_prefix_of(&tc) {
            prop_assert!(ta.is_prefix_of(&tc));
        }
    }

    /// Rule application preserves determinism: applying the same rule to the
    /// same state twice gives identical successor sets.
    #[test]
    fn successors_are_deterministic(items in proptest::collection::vec(0i64..4, 0..5)) {
        let rule = Rule::new(
            "drop-one",
            Pat::tuple(vec![Pat::bag(vec![Pat::var("e")], "rest")]),
            Rhs::tuple(vec![Rhs::var("rest")]),
        );
        let trs = Trs::new(vec![rule]);
        let state = Term::tuple(vec![Term::bag(items.into_iter().map(Term::int).collect())]);
        prop_assert_eq!(trs.successors(&state), trs.successors(&state));
    }

    /// Display never panics and is non-empty (C-DEBUG-NONEMPTY analogue).
    #[test]
    fn display_is_total(t in arb_term()) {
        prop_assert!(!t.to_string().is_empty());
    }
}
