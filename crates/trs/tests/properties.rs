//! Property-based tests of the term-rewriting engine, on the in-repo
//! `atp_util::check` harness.

use std::collections::BTreeSet;

use atp_trs::{matches, Pat, Rhs, Rule, Term, Trs};
use atp_util::check::{Check, Gen};
use atp_util::rng::Rng;

/// A small recursive term generator (ints, symbols, tuples, seqs, bags up
/// to depth 3 with up to 4 children per node).
fn arb_term_depth(g: &mut Gen, depth: u32) -> Term {
    if depth == 0 || g.gen_range(0u32..3) == 0 {
        if g.gen_bool(0.5) {
            Term::int(g.gen_range(0i64..5))
        } else {
            Term::sym(*g.pick(&["a", "b", "tau"]))
        }
    } else {
        let kids = g.vec(0..4, |g| arb_term_depth(g, depth - 1));
        match g.gen_range(0u32..3) {
            0 => Term::tuple(kids),
            1 => Term::seq(kids),
            _ => Term::bag(kids),
        }
    }
}

fn arb_term(g: &mut Gen) -> Term {
    arb_term_depth(g, 3)
}

fn int_seq(v: &[i64]) -> Term {
    Term::seq(v.iter().copied().map(Term::int).collect())
}

/// Bags are canonical: construction order never matters.
#[test]
fn bag_canonical_under_permutation() {
    Check::new("bag_canonical_under_permutation")
        .run(|g| g.vec(0..6, arb_term), |items| {
            let forward = Term::bag(items.clone());
            let mut reversed_items = items.clone();
            reversed_items.reverse();
            let reversed = Term::bag(reversed_items);
            assert_eq!(forward, reversed);
        });
}

/// A variable pattern matches anything, binding the whole term.
#[test]
fn variable_matches_everything() {
    Check::new("variable_matches_everything").run(arb_term, |t| {
        let m = matches(&Pat::var("X"), t);
        assert_eq!(m.len(), 1);
        assert_eq!(&m[0]["X"], t);
    });
}

/// Substituting a matched variable back reproduces the term:
/// instantiate ∘ match = id.
#[test]
fn match_then_instantiate_roundtrips() {
    Check::new("match_then_instantiate_roundtrips").run(arb_term, |t| {
        let m = matches(&Pat::var("X"), t);
        let rebuilt = Rhs::var("X").instantiate(&m[0]);
        assert_eq!(&rebuilt, t);
    });
}

/// Picking one element out of a bag yields one match per element occurrence
/// (duplicates give equal substitutions — exactly the multiset semantics of
/// `|`), and every rest has size len-1.
fn bag_single_pick_body(items: &[i64]) {
    let bag = Term::bag(items.iter().copied().map(Term::int).collect());
    let m = matches(&Pat::bag(vec![Pat::var("e")], "rest"), &bag);
    assert_eq!(m.len(), items.len());
    let distinct_substs: BTreeSet<String> = m.iter().map(|s| format!("{s:?}")).collect();
    let mut distinct = items.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct_substs.len(), distinct.len());
    for s in &m {
        assert_eq!(s["rest"].as_bag().unwrap().len(), items.len() - 1);
    }
}

#[test]
fn bag_single_pick_counts() {
    Check::new("bag_single_pick_counts")
        .run(|g| g.vec(1..6, |g| g.gen_range(0i64..4)), |items| {
            bag_single_pick_body(items)
        });
}

/// Regression: formerly the checked-in proptest seed that shrank to
/// `items = [2, 2]` — duplicated elements must produce one match per
/// *occurrence* but collapse to a single distinct substitution.
#[test]
fn bag_single_pick_duplicate_elements_regression() {
    bag_single_pick_body(&[2, 2]);
}

/// Picking two distinct elements yields k·(k−1) ordered assignments for
/// k distinct values (each unordered pair in both orders).
#[test]
fn bag_double_pick_counts() {
    Check::new("bag_double_pick_counts").run(
        |g| {
            // Distinct values: draw a few then dedup, like proptest's
            // hash_set generator (k may come out as low as 1).
            let raw = g.vec(2..6, |g| g.gen_range(0i64..8));
            raw.into_iter().collect::<BTreeSet<i64>>()
        },
        |items| {
            let k = items.len();
            let bag = Term::bag(items.iter().copied().map(Term::int).collect());
            let m = matches(&Pat::bag(vec![Pat::var("x"), Pat::var("y")], "rest"), &bag);
            assert_eq!(m.len(), k * (k - 1));
            for s in &m {
                assert_ne!(&s["x"], &s["y"]);
            }
        },
    );
}

/// The append operator is associative with the empty sequence as the
/// identity (the paper's `⊕` with `φ_x`).
#[test]
fn append_monoid_laws() {
    Check::new("append_monoid_laws").run(
        |g| {
            let mut v = || g.vec(0..5, |g| g.gen_range(0i64..5));
            (v(), v(), v())
        },
        |(a, b, c)| {
            let (ta, tb, tc) = (int_seq(a), int_seq(b), int_seq(c));
            // Identity.
            assert_eq!(ta.append(&Term::empty_seq()), ta.clone());
            assert_eq!(Term::empty_seq().append(&ta), ta.clone());
            // Associativity.
            assert_eq!(ta.append(&tb).append(&tc), ta.append(&tb.append(&tc)));
        },
    );
}

/// `is_prefix_of` is a partial order: reflexive, antisymmetric (up to
/// equality), transitive.
#[test]
fn prefix_is_partial_order() {
    Check::new("prefix_is_partial_order").run(
        |g| {
            let mut v = || g.vec(0..6, |g| g.gen_range(0i64..3));
            (v(), v(), v())
        },
        |(a, b, c)| {
            let (ta, tb, tc) = (int_seq(a), int_seq(b), int_seq(c));
            assert!(ta.is_prefix_of(&ta));
            if ta.is_prefix_of(&tb) && tb.is_prefix_of(&ta) {
                assert_eq!(&ta, &tb);
            }
            if ta.is_prefix_of(&tb) && tb.is_prefix_of(&tc) {
                assert!(ta.is_prefix_of(&tc));
            }
        },
    );
}

/// Rule application preserves determinism: applying the same rule to the
/// same state twice gives identical successor sets.
#[test]
fn successors_are_deterministic() {
    Check::new("successors_are_deterministic")
        .run(|g| g.vec(0..5, |g| g.gen_range(0i64..4)), |items| {
            let rule = Rule::new(
                "drop-one",
                Pat::tuple(vec![Pat::bag(vec![Pat::var("e")], "rest")]),
                Rhs::tuple(vec![Rhs::var("rest")]),
            );
            let trs = Trs::new(vec![rule]);
            let state = Term::tuple(vec![Term::bag(
                items.iter().copied().map(Term::int).collect(),
            )]);
            assert_eq!(trs.successors(&state), trs.successors(&state));
        });
}

/// Display never panics and is non-empty (C-DEBUG-NONEMPTY analogue).
#[test]
fn display_is_total() {
    Check::new("display_is_total").run(arb_term, |t| {
        assert!(!t.to_string().is_empty());
    });
}
