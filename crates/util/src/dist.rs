//! Distributions used by the simulator's workload generators.
//!
//! All draws consume a [`crate::rng::RngCore`], so every distribution is
//! deterministic under a fixed seed.

use crate::rng::{unit_f64, RngCore};

/// A uniform draw in `[0, 1)` that is never exactly zero, so `ln()` is
/// finite. Matches the `f64::EPSILON..1.0` convention the workload
/// generators used historically.
#[inline]
pub fn open_unit(rng: &mut dyn RngCore) -> f64 {
    unit_f64(rng.next_u64()).max(f64::EPSILON)
}

/// Bernoulli trial: `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
pub fn bernoulli(rng: &mut dyn RngCore, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "bernoulli: p={p} out of [0,1]");
    unit_f64(rng.next_u64()) < p
}

/// Exponential variate with the given mean (inverse-CDF method).
///
/// This is the inter-arrival gap of a Poisson process with rate
/// `1.0 / mean`.
pub fn exponential(rng: &mut dyn RngCore, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential: mean={mean} must be positive");
    -mean * open_unit(rng).ln()
}

/// Exponential inter-arrival gap rounded to whole ticks, minimum 1.
///
/// The discrete-event simulator runs on integer ticks; a zero gap would
/// collapse two arrivals onto one tick, so the gap is floored at 1.
pub fn exp_gap_ticks(rng: &mut dyn RngCore, mean: f64) -> u64 {
    (exponential(rng, mean).round() as u64).max(1)
}

/// Poisson variate with the given rate `lambda` (Knuth's method).
///
/// Suitable for the modest rates the experiments use (`lambda` up to a
/// few hundred); runtime is `O(lambda)`.
pub fn poisson(rng: &mut dyn RngCore, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson: lambda={lambda} must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= unit_f64(rng.next_u64());
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Zipf-distributed rank in `0..n` with exponent `s` (inverse-CDF over
/// the exact normalized mass function).
///
/// Rank 0 is the hottest item. `s = 0` degenerates to uniform; `s ≈ 1`
/// is the classic web-caching skew. Runtime is `O(n)` per draw — fine
/// for the small `n` (key-universe buckets, shard counts) the workload
/// generators use.
pub fn zipf(rng: &mut dyn RngCore, n: usize, s: f64) -> usize {
    assert!(n > 0, "zipf: n must be positive");
    assert!(s >= 0.0, "zipf: exponent s={s} must be non-negative");
    let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let mut u = unit_f64(rng.next_u64()) * norm;
    for k in 1..=n {
        u -= 1.0 / (k as f64).powf(s);
        if u <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 4.0)).sum();
        let mean = sum / n as f64;
        assert!((3.8..4.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn exp_gap_is_at_least_one_tick() {
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..10_000).all(|_| exp_gap_ticks(&mut rng, 0.01) >= 1));
    }

    #[test]
    fn poisson_mean_and_zero_rate() {
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, 6.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((5.8..6.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(15);
        let n = 16;
        let mut counts = vec![0u32; n];
        for _ in 0..20_000 {
            counts[zipf(&mut rng, n, 1.0)] += 1;
        }
        assert!(counts[0] > counts[n - 1] * 4, "rank 0 must dominate: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "every rank reachable");
        // s = 0 is uniform: the head cannot dominate.
        let mut flat = vec![0u32; n];
        for _ in 0..20_000 {
            flat[zipf(&mut rng, n, 0.0)] += 1;
        }
        let (min, max) = (flat.iter().min().unwrap(), flat.iter().max().unwrap());
        assert!(max - min < 20_000 / n as u32, "uniform-ish: {flat:?}");
    }

    #[test]
    fn bernoulli_edges() {
        let mut rng = StdRng::seed_from_u64(14);
        assert!(!(0..100).any(|_| bernoulli(&mut rng, 0.0)));
        assert!((0..100).all(|_| bernoulli(&mut rng, 1.0)));
    }
}
