//! Micro-benchmark harness replacing `criterion`.
//!
//! Each benchmark is a closure; the harness warms it up, auto-calibrates
//! a batch size so one timed sample lasts long enough for the clock to
//! resolve, collects per-iteration timings, and reports robust
//! statistics (median and MAD, which ignore scheduler outliers that
//! would wreck a mean/stddev). Results print as a human table followed
//! by one JSON line per benchmark for machine consumption.
//!
//! `--smoke` (or `ATP_BENCH_SMOKE=1`) runs every benchmark exactly once
//! with no warmup — CI uses it to prove the benches still *run* without
//! paying for statistics.
//!
//! ```no_run
//! use atp_util::bench::{black_box, Runner};
//!
//! let mut r = Runner::from_args("my_suite");
//! r.bench("sum_1k", || black_box((0..1000u64).sum::<u64>()));
//! r.finish();
//! ```

use std::time::Instant;

use crate::json::JsonWriter;

pub use std::hint::black_box;

/// Statistics for one benchmark, all times in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Median time per iteration.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration times.
    pub mad_ns: f64,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples taken.
    pub samples: u32,
    /// Iterations per sample (calibrated).
    pub batch: u64,
}

impl Summary {
    /// The JSON line emitted for this result.
    pub fn to_json(&self, suite: &str) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("suite");
        w.str(suite);
        w.key("name");
        w.str(&self.name);
        w.key("median_ns");
        w.f64(self.median_ns);
        w.key("mad_ns");
        w.f64(self.mad_ns);
        w.key("mean_ns");
        w.f64(self.mean_ns);
        w.key("min_ns");
        w.f64(self.min_ns);
        w.key("max_ns");
        w.f64(self.max_ns);
        w.key("samples");
        w.u64(self.samples as u64);
        w.key("batch");
        w.u64(self.batch);
        w.end_obj();
        w.finish()
    }
}

/// Render nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

/// Runs a suite of benchmarks and prints the report.
pub struct Runner {
    suite: String,
    smoke: bool,
    /// Target wall time for one timed sample, used for calibration.
    target_sample_ns: u64,
    samples: u32,
    /// Sample floor honoured even in smoke mode (default 1). Suites whose
    /// results gate regressions set this so a `--smoke` CI pass still
    /// records a median over warmed samples instead of one cold run.
    min_samples: u32,
    results: Vec<Summary>,
}

impl Runner {
    /// Build a runner for `suite`, honouring `--smoke` in `argv` and the
    /// `ATP_BENCH_SMOKE` environment variable. Unknown arguments are
    /// ignored (cargo passes filters through).
    pub fn from_args(suite: &str) -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("ATP_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
        Self::new(suite, smoke)
    }

    /// Build a runner with smoke mode chosen explicitly.
    pub fn new(suite: &str, smoke: bool) -> Self {
        Self {
            suite: suite.to_string(),
            smoke,
            target_sample_ns: 5_000_000, // 5ms per timed sample
            samples: 25,
            min_samples: 1,
            results: Vec::new(),
        }
    }

    /// Raises the smoke-mode sample floor: even under `--smoke`, every
    /// benchmark runs one warmup iteration followed by `n` timed
    /// single-iteration samples, so the recorded median is warm and has a
    /// spread. Full (non-smoke) runs are unaffected.
    pub fn min_samples(mut self, n: u32) -> Self {
        self.min_samples = n.max(1);
        self
    }

    /// True when running in smoke mode (single iteration, no stats).
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Time `f` and record the result under `name`. The closure's return
    /// value is passed through [`black_box`] so the work is not
    /// optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if self.smoke {
            if self.min_samples <= 1 {
                let start = Instant::now();
                black_box(f());
                let ns = start.elapsed().as_nanos() as f64;
                self.results.push(Summary {
                    name: name.to_string(),
                    median_ns: ns,
                    mad_ns: 0.0,
                    mean_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                    samples: 1,
                    batch: 1,
                });
                return;
            }
            // Sample floor: one warmup, then `min_samples` timed
            // single-iteration samples — a warm median at smoke cost.
            black_box(f());
            let mut per_iter: Vec<f64> = Vec::with_capacity(self.min_samples as usize);
            for _ in 0..self.min_samples {
                let start = Instant::now();
                black_box(f());
                per_iter.push(start.elapsed().as_nanos() as f64);
            }
            self.results
                .push(summarize(name, &mut per_iter, self.min_samples, 1));
            return;
        }

        // Calibrate: how many iterations make one sample last
        // ~target_sample_ns? Also serves as warmup.
        let once = {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos().max(1) as u64
        };
        let batch = (self.target_sample_ns / once).clamp(1, 1_000_000);
        // Warm up for roughly two samples' worth of work.
        for _ in 0..(2 * batch).min(1000) {
            black_box(f());
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }

        self.results
            .push(summarize(name, &mut per_iter, self.samples, batch));
    }

    /// The results collected so far.
    pub fn results(&self) -> &[Summary] {
        &self.results
    }

    /// Print the human-readable table plus one JSON line per result.
    pub fn finish(self) {
        let mode = if self.smoke { " [smoke]" } else { "" };
        println!("\n== bench suite: {}{mode} ==", self.suite);
        let name_w = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        println!(
            "{:<name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>7}",
            "name", "median", "MAD", "min", "max", "samples"
        );
        for r in &self.results {
            println!(
                "{:<name_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>7}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.mad_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.samples
            );
        }
        for r in &self.results {
            println!("{}", r.to_json(&self.suite));
        }
    }
}

/// Robust statistics over one benchmark's per-iteration timings.
fn summarize(name: &str, per_iter: &mut [f64], samples: u32, batch: u64) -> Summary {
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = median_sorted(per_iter);
    let mut devs: Vec<f64> = per_iter.iter().map(|x| (x - median).abs()).collect();
    devs.sort_by(|a, b| a.total_cmp(b));
    let mad = median_sorted(&devs);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    Summary {
        name: name.to_string(),
        median_ns: median,
        mad_ns: mad,
        mean_ns: mean,
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        samples,
        batch,
    }
}

fn median_sorted(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut calls = 0u32;
        let mut r = Runner::new("t", true);
        r.bench("counted", || calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(r.results()[0].samples, 1);
    }

    #[test]
    fn smoke_min_samples_floor_warms_and_samples() {
        let mut calls = 0u32;
        let mut r = Runner::new("t", true).min_samples(5);
        r.bench("counted", || calls += 1);
        // 1 warmup + 5 timed samples.
        assert_eq!(calls, 6);
        let s = &r.results()[0];
        assert_eq!(s.samples, 5);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn timed_mode_produces_ordered_stats() {
        let mut r = Runner::new("t", false);
        r.bench("spin", || black_box((0..512u64).sum::<u64>()));
        let s = &r.results()[0];
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.median_ns > 0.0);
        assert!(s.batch >= 1);
    }

    #[test]
    fn json_line_is_wellformed() {
        let s = Summary {
            name: "x".into(),
            median_ns: 1.5,
            mad_ns: 0.25,
            mean_ns: 1.6,
            min_ns: 1.0,
            max_ns: 2.0,
            samples: 9,
            batch: 3,
        };
        let j = s.to_json("suite");
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"median_ns\":1.5"));
        assert!(j.contains("\"samples\":9"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.0ns");
        assert!(fmt_ns(1_500.0).ends_with("µs"));
        assert!(fmt_ns(2_000_000.0).ends_with("ms"));
        assert!(fmt_ns(3_000_000_000.0).ends_with('s'));
    }
}
