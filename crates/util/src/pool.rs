//! Dependency-free scoped thread pool with an index-ordered `par_map`.
//!
//! The simulation plane is a grid of *independent* runs — per (protocol,
//! N, load, seed) point — so the natural unit of parallelism is "map this
//! closure over a slice, give me the results in input order". [`par_map`]
//! does exactly that on `std::thread::scope`:
//!
//! * **Deterministic**: results are returned in input order regardless of
//!   which worker computed them or in what order they finished. A caller
//!   whose per-item work is itself deterministic (every simulation point
//!   carries its own seed) gets byte-identical output at any thread count.
//! * **Dynamically scheduled**: workers pull the next unclaimed index from
//!   a shared atomic counter, so long points do not serialize behind short
//!   ones (the load-balancing half of work stealing, without the deques —
//!   task granularity here is whole simulation runs, far above the
//!   cross-worker-steal threshold).
//! * **Panic-propagating**: a panic in any task is re-raised on the caller
//!   with its original payload once the remaining workers have drained.
//! * **Reentrant**: a task that calls [`par_map`] again runs the nested
//!   map serially on its own worker thread — safe by construction, and it
//!   avoids multiplying thread counts on nested sweeps.
//!
//! Worker count comes from, in priority order: a [`with_threads`] override
//! (scoped, for tests and benchmarks), the `ATP_THREADS` environment
//! variable, and [`std::thread::available_parallelism`]. `ATP_THREADS=1`
//! forces fully serial execution on the calling thread — no threads are
//! spawned at all, which is also the mode to use under a debugger.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Scoped worker-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True on threads spawned by [`par_map`]; nested maps run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Parses an `ATP_THREADS`-style value. `None`, empty, non-numeric and `0`
/// all mean "auto" (use the machine's available parallelism).
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    let s = raw?.trim();
    if s.is_empty() {
        return None;
    }
    match s.parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

/// The number of workers [`par_map`] will use, resolved from the
/// [`with_threads`] override, then `ATP_THREADS`, then
/// [`std::thread::available_parallelism`] (falling back to 1).
pub fn worker_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    let env = std::env::var("ATP_THREADS").ok();
    if let Some(n) = parse_threads(env.as_deref()) {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` with the pool's worker count pinned to `threads` (minimum 1),
/// restoring the previous setting afterwards — including on unwind.
///
/// This is how the determinism tests compare `ATP_THREADS=1` against
/// `ATP_THREADS=8` inside one process without touching the (global,
/// race-prone) environment.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// Maps `f` over `items` on up to [`worker_count`] scoped threads and
/// returns the results **in input order**.
///
/// Runs serially on the calling thread when the worker count is 1, when
/// there is at most one item, or when called from inside another
/// `par_map` task (safe reentry). A panic in any task is propagated to
/// the caller with its original payload.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 || IN_WORKER.with(Cell::get) {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut labelled: Vec<(usize, R)> = Vec::with_capacity(items.len());
    let mut panic_payload = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => labelled.extend(part),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    labelled.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(labelled.iter().enumerate().all(|(k, &(i, _))| k == i));
    labelled.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Burn a little CPU so tasks finish out of submission order.
    fn spin(units: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..units * 500 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc)
    }

    #[test]
    fn results_are_input_ordered_under_uneven_durations() {
        let items: Vec<u64> = (0..97).collect();
        let f = |x: &u64| {
            // Early items are the slowest: workers finish out of order.
            spin(97 - *x);
            *x * 3 + 1
        };
        let serial: Vec<u64> = items.iter().map(f).collect();
        let parallel = with_threads(4, || par_map(&items, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let result = std::panic::catch_unwind(|| {
            with_threads(3, || {
                par_map(&[1, 2, 3, 4], |x| {
                    if *x == 3 {
                        panic!("boom at {x}");
                    }
                    *x
                })
            })
        });
        let payload = result.expect_err("panic must cross par_map");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 3"), "payload lost: {msg:?}");
    }

    #[test]
    fn one_thread_runs_serially_on_the_caller() {
        let caller = std::thread::current().id();
        let ids = with_threads(1, || {
            par_map(&[1, 2, 3], |_| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn many_threads_actually_fan_out() {
        let used_worker = AtomicBool::new(false);
        let caller = std::thread::current().id();
        with_threads(4, || {
            par_map(&(0..64).collect::<Vec<_>>(), |_| {
                if std::thread::current().id() != caller {
                    used_worker.store(true, Ordering::Relaxed);
                }
            })
        });
        assert!(used_worker.load(Ordering::Relaxed), "no worker thread ran");
    }

    #[test]
    fn nested_par_map_reenters_safely() {
        let grid = with_threads(3, || {
            par_map(&[0u64, 1, 2, 3], |&row| {
                par_map(&[0u64, 1, 2], |&col| row * 10 + col)
            })
        });
        let expect: Vec<Vec<u64>> = (0..4).map(|r| (0..3).map(|c| r * 10 + c).collect()).collect();
        assert_eq!(grid, expect);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = par_map(&[], |x: &u64| *x);
        assert!(empty.is_empty());
        assert_eq!(with_threads(8, || par_map(&[7], |x| x + 1)), vec![8]);
    }

    #[test]
    fn with_threads_restores_on_exit_and_unwind() {
        assert_eq!(THREAD_OVERRIDE.with(Cell::get), None);
        with_threads(2, || {
            assert_eq!(worker_count(), 2);
            with_threads(5, || assert_eq!(worker_count(), 5));
            assert_eq!(worker_count(), 2);
        });
        assert_eq!(THREAD_OVERRIDE.with(Cell::get), None);
        let _ = std::panic::catch_unwind(|| with_threads(9, || panic!("unwind")));
        assert_eq!(THREAD_OVERRIDE.with(Cell::get), None);
    }

    #[test]
    fn parse_threads_semantics() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("  ")), None);
        assert_eq!(parse_threads(Some("0")), None, "0 means auto");
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("lots")), None);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}
