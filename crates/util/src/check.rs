//! A seeded property-testing harness with regression replay and shrinking.
//!
//! Replaces `proptest` for this workspace. A property is a plain
//! panicking closure over a generated value; the harness runs it for a
//! configurable number of seeded cases, and on failure shrinks the
//! counterexample before reporting.
//!
//! ## Model
//!
//! Generation is *tape-based* (the technique Hypothesis popularised):
//! the generator draws `u64`s from a [`Gen`], and every draw is recorded
//! on a tape. Shrinking never manipulates your data structure directly —
//! it edits the tape (deleting chunks, zeroing and halving entries) and
//! re-runs your generator over the edited tape, with exhausted reads
//! returning 0. Because the value is always rebuilt by your own
//! generator, shrunk values are valid by construction: no separate
//! shrinker per type, and `Vec` lengths, index ranges, and cross-field
//! invariants all hold automatically.
//!
//! ## Reproducibility
//!
//! Each case's seed is derived deterministically from a base seed (by
//! default a hash of the property name, so suites are stable run to
//! run). When a case fails, the harness prints its seed; checking in
//! `.regression(seed)` replays that exact case first on every future
//! run, which is how former `proptest-regressions` files are encoded as
//! code.
//!
//! ```
//! use atp_util::check::Check;
//! use atp_util::rng::Rng;
//!
//! Check::new("addition_commutes").cases(32).run(
//!     |g| (g.gen_range(0..1000u64), g.gen_range(0..1000u64)),
//!     |&(a, b)| assert_eq!(a + b, b + a),
//! );
//! ```
//!
//! Environment overrides: `ATP_CHECK_CASES` forces the case count for
//! every suite (useful for a long fuzzing soak), `ATP_CHECK_SEED`
//! overrides the base seed.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use crate::rng::{RngCore, SeedableRng, SplitMix64, StdRng};

/// Random-value source handed to generators. Records every draw on a
/// tape so the harness can shrink by editing and replaying the tape.
///
/// `Gen` implements [`RngCore`], so the whole [`crate::rng::Rng`]
/// surface (`gen_range`, `gen_bool`) is available on it.
pub struct Gen {
    rng: StdRng,
    replay: Option<Vec<u64>>,
    pos: usize,
    tape: Vec<u64>,
}

impl Gen {
    /// A generator drawing fresh randomness from `seed`. Every draw is
    /// recorded; [`Gen::tape`] exposes the record for later replay.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            replay: None,
            pos: 0,
            tape: Vec::new(),
        }
    }

    /// A generator replaying `tape`; draws past the end return 0. This is
    /// how shrunk counterexamples are rebuilt and how external harnesses
    /// (e.g. the DST explorer) replay serialized `.tape` files.
    pub fn from_tape(tape: Vec<u64>) -> Self {
        Self {
            rng: StdRng::seed_from_u64(0),
            replay: Some(tape),
            pos: 0,
            tape: Vec::new(),
        }
    }

    fn live(seed: u64) -> Self {
        Self::from_seed(seed)
    }

    fn replaying(tape: Vec<u64>) -> Self {
        Self::from_tape(tape)
    }

    /// The draws consumed so far, in order. Replaying this exact tape with
    /// [`Gen::from_tape`] rebuilds the identical value.
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }

    fn draw(&mut self) -> u64 {
        let raw = match &self.replay {
            Some(t) => t.get(self.pos).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.tape.push(raw);
        raw
    }

    /// A vector whose length is drawn from `len_range` and whose
    /// elements come from `f`.
    pub fn vec<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        use crate::rng::Rng;
        let len = self.gen_range(len_range);
        (0..len).map(|_| f(self)).collect()
    }

    /// A uniformly chosen reference into a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        use crate::rng::Rng;
        assert!(!items.is_empty(), "Gen::pick: empty slice");
        let i = self.gen_range(0..items.len());
        &items[i]
    }
}

impl RngCore for Gen {
    fn next_u64(&mut self) -> u64 {
        self.draw()
    }
}

/// Builder for one property check.
pub struct Check {
    name: String,
    cases: u32,
    base_seed: u64,
    regressions: Vec<u64>,
    max_shrink_iters: u32,
}

/// FNV-1a, used to derive a stable per-property default base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Check {
    /// New check named `name` (shown in failure reports; also seeds the
    /// default case stream).
    pub fn new(name: &str) -> Self {
        let base_seed = match std::env::var("ATP_CHECK_SEED") {
            Ok(v) => v.parse().unwrap_or_else(|_| fnv1a(name)),
            Err(_) => fnv1a(name),
        };
        Self {
            name: name.to_string(),
            cases: 64,
            base_seed,
            regressions: Vec::new(),
            max_shrink_iters: 500,
        }
    }

    /// Number of random cases to run (default 64; `ATP_CHECK_CASES`
    /// overrides for every suite).
    pub fn cases(mut self, n: u32) -> Self {
        self.cases = n;
        self
    }

    /// Override the base seed (default: hash of the property name).
    pub fn seed(mut self, s: u64) -> Self {
        self.base_seed = s;
        self
    }

    /// Replay a previously failing case seed before the random cases.
    /// This is the checked-in form of a proptest regressions file.
    pub fn regression(mut self, seed: u64) -> Self {
        self.regressions.push(seed);
        self
    }

    /// Cap on shrink candidate evaluations (default 500).
    pub fn max_shrink_iters(mut self, n: u32) -> Self {
        self.max_shrink_iters = n;
        self
    }

    /// Run the property: for each case, build a value with `gen` and
    /// apply `prop` (which fails by panicking, so plain `assert!` /
    /// `assert_eq!` work). Panics with a shrunk counterexample report on
    /// the first failing case.
    pub fn run<T, G, P>(self, gen: G, prop: P)
    where
        T: Debug,
        G: Fn(&mut Gen) -> T,
        P: Fn(&T),
    {
        let cases = match std::env::var("ATP_CHECK_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        };

        // Regression seeds first: a checked-in counterexample must stay
        // fixed forever, so it is always cheap to re-verify.
        let mut seeds: Vec<(u64, bool)> =
            self.regressions.iter().map(|&s| (s, true)).collect();
        let mut sm = SplitMix64::new(self.base_seed);
        seeds.extend((0..cases).map(|_| (sm.next_u64(), false)));

        for (case_seed, is_regression) in seeds {
            let mut g = Gen::live(case_seed);
            let value = gen(&mut g);
            let tape = std::mem::take(&mut g.tape);
            if let Err(msg) = run_prop(&prop, &value) {
                let (min_tape, iters) =
                    self.shrink(tape, &gen, &prop);
                let mut rg = Gen::replaying(min_tape);
                let min_value = gen(&mut rg);
                let kind = if is_regression { "regression" } else { "case" };
                panic!(
                    "[check] property '{}' failed ({kind} seed {case_seed:#x})\n\
                     original failure: {msg}\n\
                     minimal counterexample (after {iters} shrink steps):\n  {min_value:#?}\n\
                     replay: add `.regression({case_seed:#x})` to this Check",
                    self.name
                );
            }
        }
    }

    /// Shrink `tape` to a smaller one whose generated value still fails
    /// `prop`. Returns the best tape and the number of candidates tried.
    fn shrink<T, G, P>(&self, tape: Vec<u64>, gen: &G, prop: &P) -> (Vec<u64>, u32)
    where
        T: Debug,
        G: Fn(&mut Gen) -> T,
        P: Fn(&T),
    {
        // Re-running the property hundreds of times while shrinking
        // would spray panic messages; silence the hook for the duration.
        let _quiet = silence_panics();
        shrink_tape(tape, self.max_shrink_iters, |cand| {
            let mut g = Gen::replaying(cand.to_vec());
            // The generator itself may panic on a mangled tape (e.g. a
            // helper asserting its own invariant); that candidate is
            // simply invalid, not a property failure.
            let value = panic::catch_unwind(AssertUnwindSafe(|| gen(&mut g))).ok()?;
            if run_prop(prop, &value).is_err() {
                Some(g.tape)
            } else {
                None
            }
        })
    }
}

/// Shrinks a draw tape to a smaller one that still fails, by chunk deletion
/// and per-draw descent toward zero.
///
/// `still_fails` rebuilds a value from a candidate tape and returns
/// `Some(consumed_tape)` if that value still exhibits the failure (the
/// consumed tape may be shorter than the candidate when the rebuilt value
/// needed fewer draws), or `None` if the candidate passes or is invalid.
///
/// A candidate is accepted only if its consumed tape is *strictly smaller*
/// than the current best in (length, lexicographic) order — a well-founded
/// descent, so shrinking terminates even without the `max_iters` cap.
/// Returns the best tape and the number of candidates evaluated.
///
/// [`Check`] shrinks through this; external harnesses with non-panicking
/// failure evaluation (e.g. the DST schedule explorer in `atp-sim`) reuse it
/// directly.
pub fn shrink_tape(
    tape: Vec<u64>,
    max_iters: u32,
    mut still_fails: impl FnMut(&[u64]) -> Option<Vec<u64>>,
) -> (Vec<u64>, u32) {
    let mut best = tape;
    let mut iters = 0u32;

    // Evaluate a candidate tape: Some(tape-as-consumed) if the rebuilt
    // value still fails AND the consumed tape is strictly smaller than
    // `best`.
    let mut accepts = |cand: &[u64], best: &[u64], iters: &mut u32| -> Option<Vec<u64>> {
        if *iters >= max_iters {
            return None;
        }
        *iters += 1;
        let used = still_fails(cand)?;
        let smaller =
            used.len() < best.len() || (used.len() == best.len() && used.as_slice() < best);
        if smaller {
            Some(used)
        } else {
            None
        }
    };

    let mut improved = true;
    while improved && iters < max_iters {
        improved = false;

        // Pass 1: delete chunks of draws, largest first. This is
        // what removes whole elements from generated vectors.
        for size in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + size <= best.len() && iters < max_iters {
                let mut cand = best.clone();
                cand.drain(i..i + size);
                if let Some(used) = accepts(&cand, &best, &mut iters) {
                    best = used;
                    improved = true;
                    // Same index now holds the next chunk.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: shrink individual draws toward zero. Zero is tried
        // first; otherwise binary-descend between the largest known
        // passing value and the smallest known failing one, which
        // lands exactly on threshold counterexamples.
        for i in 0..best.len() {
            // An accepted candidate's consumed tape can be *shorter* than
            // the one it replaced (the rebuilt value needed fewer draws),
            // so re-check the index on every iteration.
            if iters >= max_iters || i >= best.len() {
                break;
            }
            let orig = best[i];
            if orig == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            if let Some(used) = accepts(&cand, &best, &mut iters) {
                best = used;
                improved = true;
                continue;
            }
            let (mut lo, mut hi) = (0u64, orig);
            while lo + 1 < hi && iters < max_iters {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                if i >= cand.len() {
                    break;
                }
                cand[i] = mid;
                if let Some(used) = accepts(&cand, &best, &mut iters) {
                    best = used;
                    improved = true;
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
    }
    (best, iters)
}

fn run_prop<T>(prop: impl Fn(&T), value: &T) -> Result<(), String> {
    match panic::catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload_message(payload.as_ref())),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---- panic-hook silencing ------------------------------------------------
//
// During shrinking the property is expected to panic hundreds of times;
// the default hook would print a backtrace line for each. A process-wide
// hook (installed once) delegates to the original unless the current
// thread has opted into silence.

thread_local! {
    static SILENCED: AtomicBool = const { AtomicBool::new(false) };
}

static INSTALL: Once = Once::new();

fn silence_panics() -> impl Drop {
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = SILENCED.with(|s| s.load(Ordering::Relaxed));
            if !quiet {
                prev(info);
            }
        }));
    });
    SILENCED.with(|s| s.store(true, Ordering::Relaxed));
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SILENCED.with(|s| s.store(false, Ordering::Relaxed));
        }
    }
    Guard
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        Check::new("sum_bounded").cases(50).run(
            |g| g.vec(0..10, |g| g.gen_range(0..100u64)),
            |v| assert!(v.iter().sum::<u64>() <= 100 * v.len() as u64),
        );
    }

    #[test]
    fn failing_property_is_reported_and_shrunk() {
        let result = panic::catch_unwind(|| {
            Check::new("finds_big_values").cases(200).run(
                |g| g.gen_range(0..1000u64),
                |&v| assert!(v < 500, "value too big"),
            );
        });
        let msg = payload_message(result.expect_err("property must fail").as_ref());
        assert!(msg.contains("finds_big_values"), "report names the property: {msg}");
        assert!(msg.contains("replay"), "report offers a replay seed: {msg}");
        // Shrinking toward zero must land exactly on the boundary.
        assert!(msg.contains("500"), "counterexample should shrink to 500: {msg}");
    }

    #[test]
    fn vec_counterexamples_shrink_small() {
        let result = panic::catch_unwind(|| {
            Check::new("no_vec_sums_over_100").cases(200).run(
                |g| g.vec(0..20, |g| g.gen_range(0..50u64)),
                |v| assert!(v.iter().sum::<u64>() <= 100),
            );
        });
        let msg = payload_message(result.expect_err("property must fail").as_ref());
        // The minimal failing vector for sum>100 with elements <50 needs
        // exactly 3 elements; shrinking must not report a 20-element one.
        let elems = msg
            .lines()
            .skip_while(|l| !l.contains("minimal counterexample"))
            .filter(|l| l.trim().ends_with(','))
            .count();
        assert!(elems <= 8, "expected a small shrunk vec, got: {msg}");
    }

    #[test]
    fn regression_seed_replays_identical_value() {
        let seed = 0xDEAD_BEEF_u64;
        let v1 = {
            let mut g = Gen::live(seed);
            g.vec(1..10, |g| g.gen_range(0..1_000_000u64))
        };
        let v2 = {
            let mut g = Gen::live(seed);
            g.vec(1..10, |g| g.gen_range(0..1_000_000u64))
        };
        assert_eq!(v1, v2);
    }

    #[test]
    fn replay_with_zero_tape_yields_minimal_draws() {
        let mut g = Gen::replaying(vec![]);
        assert_eq!(g.gen_range(5..100u64), 5);
        assert!(!g.gen_bool(0.5) || true); // draws are 0; just must not panic
    }

    #[test]
    fn pick_returns_element_from_slice() {
        let items = [10, 20, 30];
        let mut g = Gen::live(1);
        for _ in 0..50 {
            assert!(items.contains(g.pick(&items)));
        }
    }
}
