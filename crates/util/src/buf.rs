//! Minimal little-endian byte-buffer traits, replacing the `bytes` crate.
//!
//! The wire codec writes into a `Vec<u8>` and reads from a `&[u8]`
//! cursor; those are the only two shapes the workspace needs, so that is
//! all this module implements. Method names match the `bytes` crate so
//! the codec reads the same as before the hermetic sweep.
//!
//! ```
//! use atp_util::buf::{Buf, BufMut};
//!
//! let mut out = Vec::new();
//! out.put_u8(0x01);
//! out.put_u32_le(7);
//! out.put_u64_le(99);
//!
//! let mut cur: &[u8] = &out;
//! assert_eq!(cur.get_u8(), 0x01);
//! assert_eq!(cur.get_u32_le(), 7);
//! assert_eq!(cur.get_u64_le(), 99);
//! assert_eq!(cur.remaining(), 0);
//! ```

/// Write side: append little-endian integers to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// Read side: a cursor that consumes little-endian integers.
///
/// Callers must check [`Buf::remaining`] before each `get_*`; reading
/// past the end panics (as with the `bytes` crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes and return them as a fixed-size view.
    fn take(&mut self, n: usize) -> &[u8];

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn take(&mut self, n: usize) -> &[u8] {
        (**self).take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v = Vec::new();
        v.put_u8(0xAB);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0123_4567_89AB_CDEF);
        v.put_slice(b"xy");
        assert_eq!(v.len(), 1 + 4 + 8 + 2);

        let mut cur: &[u8] = &v;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.take(2), b"xy");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn works_through_mut_references() {
        fn write_into(buf: &mut impl BufMut) {
            buf.put_u32_le(5);
        }
        fn read_from(buf: &mut impl Buf) -> u32 {
            buf.get_u32_le()
        }
        let mut v = Vec::new();
        write_into(&mut v);
        let mut cur: &[u8] = &v;
        assert_eq!(read_from(&mut cur), 5);
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
