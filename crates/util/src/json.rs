//! A tiny hand-rolled JSON writer, plus a minimal recursive-descent
//! parser for the documents the workspace writes itself.
//!
//! The workspace emits JSON for run summaries, bench reports and DST
//! replay tapes, so a push-style writer is the workhorse. Output is
//! deterministic: fields appear in the order they are written, `f64`s
//! use Rust's shortest round-trip formatting, and non-finite floats
//! serialize as `null` (JSON has no NaN). The only documents read back
//! are the `.tape` files the DST explorer checks in, so [`parse`]
//! covers standard JSON without extensions (no comments, no trailing
//! commas) and stores all numbers as `f64` with an exact-`u64` fast
//! path for integer literals.
//!
//! ```
//! use atp_util::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_obj();
//! w.key("name");
//! w.str("ring");
//! w.key("grants");
//! w.u64(3);
//! w.key("latencies");
//! w.begin_arr();
//! w.f64(1.5);
//! w.f64(2.0);
//! w.end_arr();
//! w.end_obj();
//! assert_eq!(w.finish(), r#"{"name":"ring","grants":3,"latencies":[1.5,2]}"#);
//! ```

/// Escape a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Push-style JSON writer with automatic comma placement.
///
/// Call sequence is the caller's responsibility (a `key` must be
/// followed by exactly one value; containers must be balanced); the
/// writer only tracks where commas go.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: how many items written so far.
    stack: Vec<usize>,
    /// True immediately after `key()` — the next value completes the pair.
    pending_key: bool,
}

impl JsonWriter {
    /// Fresh writer with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_item(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(count) = self.stack.last_mut() {
            if *count > 0 {
                self.buf.push(',');
            }
            *count += 1;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) {
        self.before_item();
        self.buf.push('{');
        self.stack.push(0);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) {
        self.before_item();
        self.buf.push('[');
        self.stack.push(0);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    /// Write an object key; the next value call completes the pair.
    pub fn key(&mut self, k: &str) {
        self.before_item();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self.pending_key = true;
    }

    /// Write a string value.
    pub fn str(&mut self, s: &str) {
        self.before_item();
        self.buf.push('"');
        self.buf.push_str(&escape(s));
        self.buf.push('"');
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_item();
        self.buf.push_str(&v.to_string());
    }

    /// Write a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_item();
        self.buf.push_str(&v.to_string());
    }

    /// Write a float value (`null` if not finite).
    pub fn f64(&mut self, v: f64) {
        self.before_item();
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_item();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Write a `null`.
    pub fn null(&mut self) {
        self.before_item();
        self.buf.push_str("null");
    }

    /// Consume the writer and return the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// A parsed JSON value.
///
/// Numbers are kept both ways: `Num(f64)` for the general case and
/// `Int(u64)` when the literal was a plain non-negative integer that
/// fits — tape draws are `u64` and must round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits in `u64`, kept exact.
    Int(u64),
    /// Any other number (negative, fractional, or exponent form).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse a JSON document. Rejects trailing garbage after the top-level
/// value; returns a short human-readable error with a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                expect(bytes, pos, b'"')?;
                let key = parse_string_body(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            parse_string_body(bytes, pos).map(Value::Str)
        }
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

/// Parse the body of a string; the opening quote has been consumed.
fn parse_string_body(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates are not paired up — tape files never
                        // contain them; map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(format!("control byte in string at {pos}")),
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so this is safe
                // to slice on char boundaries found via the leading byte).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && bytes[end] & 0xc0 == 0x80 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..end]).map_err(|_| "bad utf-8")?);
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf-8")?;
    if let Ok(v) = text.parse::<u64>() {
        return Ok(Value::Int(v));
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a");
        w.begin_obj();
        w.key("x");
        w.u64(1);
        w.key("y");
        w.i64(-2);
        w.end_obj();
        w.key("b");
        w.begin_arr();
        w.bool(true);
        w.null();
        w.str("z");
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":{"x":1,"y":-2},"b":[true,null,"z"]}"#);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(0.5);
        w.end_arr();
        assert_eq!(w.finish(), "[null,null,0.5]");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name");
        w.str("quote \" backslash \\ newline \n");
        w.key("tape");
        w.begin_arr();
        w.u64(0);
        w.u64(u64::MAX);
        w.u64(42);
        w.end_arr();
        w.key("ok");
        w.bool(true);
        w.key("none");
        w.null();
        w.end_obj();
        let doc = w.finish();

        let v = parse(&doc).expect("writer output parses");
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("quote \" backslash \\ newline \n")
        );
        let tape: Vec<u64> = v
            .get("tape")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|e| e.as_u64().unwrap())
            .collect();
        assert_eq!(tape, vec![0, u64::MAX, 42]);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn parse_numbers_and_whitespace() {
        let v = parse(" [ 1 , -2.5 , 3e2 , 18446744073709551615 ] ").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0], Value::Int(1));
        assert_eq!(items[1], Value::Num(-2.5));
        assert_eq!(items[2], Value::Num(300.0));
        assert_eq!(items[3], Value::Int(u64::MAX));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "[1] trailing", "\"unterminated", "tru"] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }
}
