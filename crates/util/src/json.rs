//! A tiny hand-rolled JSON writer.
//!
//! The workspace emits JSON in exactly two places — run summaries and
//! bench reports — and never parses it, so a push-style writer is all
//! that is needed. Output is deterministic: fields appear in the order
//! they are written, `f64`s use Rust's shortest round-trip formatting,
//! and non-finite floats serialize as `null` (JSON has no NaN).
//!
//! ```
//! use atp_util::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_obj();
//! w.key("name");
//! w.str("ring");
//! w.key("grants");
//! w.u64(3);
//! w.key("latencies");
//! w.begin_arr();
//! w.f64(1.5);
//! w.f64(2.0);
//! w.end_arr();
//! w.end_obj();
//! assert_eq!(w.finish(), r#"{"name":"ring","grants":3,"latencies":[1.5,2]}"#);
//! ```

/// Escape a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Push-style JSON writer with automatic comma placement.
///
/// Call sequence is the caller's responsibility (a `key` must be
/// followed by exactly one value; containers must be balanced); the
/// writer only tracks where commas go.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: how many items written so far.
    stack: Vec<usize>,
    /// True immediately after `key()` — the next value completes the pair.
    pending_key: bool,
}

impl JsonWriter {
    /// Fresh writer with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_item(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(count) = self.stack.last_mut() {
            if *count > 0 {
                self.buf.push(',');
            }
            *count += 1;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) {
        self.before_item();
        self.buf.push('{');
        self.stack.push(0);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) {
        self.before_item();
        self.buf.push('[');
        self.stack.push(0);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    /// Write an object key; the next value call completes the pair.
    pub fn key(&mut self, k: &str) {
        self.before_item();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self.pending_key = true;
    }

    /// Write a string value.
    pub fn str(&mut self, s: &str) {
        self.before_item();
        self.buf.push('"');
        self.buf.push_str(&escape(s));
        self.buf.push('"');
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_item();
        self.buf.push_str(&v.to_string());
    }

    /// Write a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_item();
        self.buf.push_str(&v.to_string());
    }

    /// Write a float value (`null` if not finite).
    pub fn f64(&mut self, v: f64) {
        self.before_item();
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.before_item();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Write a `null`.
    pub fn null(&mut self) {
        self.before_item();
        self.buf.push_str("null");
    }

    /// Consume the writer and return the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a");
        w.begin_obj();
        w.key("x");
        w.u64(1);
        w.key("y");
        w.i64(-2);
        w.end_obj();
        w.key("b");
        w.begin_arr();
        w.bool(true);
        w.null();
        w.str("z");
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":{"x":1,"y":-2},"b":[true,null,"z"]}"#);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(0.5);
        w.end_arr();
        assert_eq!(w.finish(), "[null,null,0.5]");
    }
}
