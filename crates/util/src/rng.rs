//! Deterministic seeded pseudo-random number generation.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64 so that *any* `u64` seed — including 0 — yields a
//! well-mixed initial state. The trait surface deliberately mirrors the
//! small slice of `rand` 0.8 this workspace used (`RngCore`, `Rng`,
//! `SeedableRng`, `gen_range`, `gen_bool`), so porting a call site is
//! an import swap, not a rewrite.
//!
//! ```
//! use atp_util::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a = rng.gen_range(0..10u32);
//! assert!(a < 10);
//! let again = StdRng::seed_from_u64(42).gen_range(0..10u32);
//! assert_eq!(a, again);
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source: a stream of `u64`s.
///
/// Object-safe; simulation models take `&mut dyn RngCore` so latency
/// and drop models stay trait objects.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience methods over any [`RngCore`].
///
/// Blanket-implemented; `&mut dyn RngCore` gets the methods too via the
/// reference impl of `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a `f64` uniform in `[0, 1)` (53-bit mantissa).
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the integer widths and `f64` the workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every u64 is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// SplitMix64: used to expand a single `u64` seed into generator state.
///
/// Also a perfectly serviceable (if statistically weaker) generator in
/// its own right; the property harness uses it to derive per-case seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's standard generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; more than
/// adequate for simulation workloads, and (unlike `rand`'s `StdRng`)
/// guaranteed stable across releases of this repository, which is what
/// makes checked-in regression seeds and byte-identical reruns durable.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace's default generator. Code should name `StdRng` so a
/// future algorithm swap is one line here.
pub type StdRng = Xoshiro256StarStar;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the SplitMix64 paper code.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5..=5u64);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((5000..7000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn dyn_rng_core_supports_convenience_methods() {
        let mut r = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut r;
        let v = dynr.gen_range(0..100u64);
        assert!(v < 100);
        let _ = dynr.gen_bool(0.5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 bytes from a seeded stream: overwhelmingly unlikely to be all zero.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
