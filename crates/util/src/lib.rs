//! # atp-util — hermetic support library for the adaptive token-passing workspace
//!
//! Every other crate in this workspace depends only on `std` and this
//! crate. `atp-util` provides, with zero external dependencies:
//!
//! * [`rng`] — a deterministic seeded PRNG (SplitMix64 for seeding,
//!   xoshiro256\*\* for the stream) behind a `rand`-0.8-shaped trait
//!   surface ([`rng::RngCore`], [`rng::Rng`], [`rng::SeedableRng`]) so
//!   simulation call sites read idiomatically.
//! * [`dist`] — the distributions the simulator draws from: uniform
//!   ranges, Bernoulli, exponential and Poisson inter-arrival gaps.
//! * [`buf`] — minimal little-endian byte-buffer traits ([`buf::Buf`],
//!   [`buf::BufMut`]) over `Vec<u8>` / `&[u8]`, replacing the `bytes`
//!   crate in the wire codec.
//! * [`json`] — a tiny hand-rolled JSON writer for run summaries and
//!   bench reports.
//! * [`check`] — a seeded property-testing harness with regression-seed
//!   replay and tape-based shrinking, API-close enough to `proptest`
//!   that the safety suites (prefix property, codec round-trips, TRS
//!   laws) ported over mechanically.
//! * [`bench`] — a micro-benchmark harness (warmup, timed iterations,
//!   median/MAD, JSON output, `--smoke` mode) replacing `criterion`.
//! * [`metrics`] — deterministic observability primitives: counters,
//!   gauges and HDR-style log-bucketed histograms with *exact merge*,
//!   collected in a name-sorted [`metrics::Registry`] so parallel sweep
//!   shards serialize byte-identically at any thread count.
//! * [`pool`] — a scoped thread pool with an index-ordered, panic-
//!   propagating [`pool::par_map`] (worker count from `ATP_THREADS`),
//!   the fan-out layer under the simulator's parallel sweep executor.
//!
//! The point of the crate is hermeticity: `CARGO_NET_OFFLINE=true
//! cargo build --release && cargo test -q` must pass on a machine with
//! no registry access at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod buf;
pub mod check;
pub mod dist;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod rng;

pub use metrics::{LogHistogram, Registry};
