//! Deterministic observability primitives: counters, gauges and
//! log-bucketed histograms with **exact merge**.
//!
//! The simulation plane runs as a grid of independent points fanned out
//! over a thread pool, so any run-level measurement must be mergeable
//! without loss: two shards that each recorded half of the samples have
//! to combine into exactly the state a single serial run would have
//! produced, or parallel sweeps stop being byte-identical. Everything
//! here merges by plain integer addition (plus min/max), which is
//! associative and commutative — the property tests in this module and
//! the sweep determinism suite both lean on that.
//!
//! [`LogHistogram`] uses HDR-style bucketing: values below
//! `1 << SUB_BUCKET_BITS` are exact; above that, each power-of-two range
//! splits into `1 << SUB_BUCKET_BITS` sub-buckets, bounding the relative
//! quantile error at `1 / 2^SUB_BUCKET_BITS` (~6%) while keeping the
//! bucket array small and summable.
//!
//! ```rust
//! use atp_util::metrics::{LogHistogram, Registry};
//!
//! let mut a = LogHistogram::new();
//! let mut b = LogHistogram::new();
//! a.record(3);
//! b.record(900);
//! a.merge(&b);
//! assert_eq!(a.count(), 2);
//! assert_eq!(a.min(), 3);
//!
//! let mut reg = Registry::new();
//! reg.counter_add("grants", 7);
//! reg.hist_record("wait_ticks", 12);
//! assert!(reg.to_json().contains("\"grants\":7"));
//! ```

use std::collections::BTreeMap;

use crate::json::JsonWriter;

/// Sub-bucket resolution: each power-of-two range splits into
/// `1 << SUB_BUCKET_BITS` buckets (~6% worst-case relative error).
pub const SUB_BUCKET_BITS: u32 = 4;

const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Number of buckets a histogram holds: the `SUB_BUCKETS` exact low
/// values plus `SUB_BUCKETS` per power-of-two range above them.
pub const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total and monotone over `u64`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    // `msb >= SUB_BUCKET_BITS`; shifting by `msb - SUB_BUCKET_BITS`
    // keeps the top SUB_BUCKET_BITS+1 bits, so `v >> shift` lands in
    // [SUB_BUCKETS, 2*SUB_BUCKETS): SUB_BUCKETS sub-buckets per octave.
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    let base = SUB_BUCKETS + (shift as usize) * SUB_BUCKETS;
    let offset = (v >> shift) as usize - SUB_BUCKETS;
    base + offset
}

/// The smallest value landing in bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let shift = ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let offset = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + offset) << shift
}

/// The largest value landing in bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(i + 1) - 1
}

/// A log-bucketed histogram of `u64` samples with exact merge.
///
/// Count, sum, min and max are tracked exactly; quantiles are read from
/// the bucket array with bounded relative error. Two histograms merge by
/// bucket-wise addition — associative, commutative, and identical to
/// having recorded all samples into one histogram, which is what keeps
/// parallel sweep shards byte-identical to serial runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Records `n` occurrences of `v` at once.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += n;
    }

    /// Exact merge: afterwards `self` equals a histogram that recorded
    /// both sample streams.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile as the upper bound of the bucket where the
    /// cumulative count first reaches `ceil(q * count)`, clamped to the
    /// exact min/max. 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(low, high, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), bucket_high(i), c))
    }

    /// Writes the histogram as a JSON object value into `w`.
    ///
    /// The bucket array serializes sparsely (`[low, count]` pairs), so
    /// the document is compact and still merge-checkable byte-for-byte.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.key("count");
        w.u64(self.count);
        w.key("sum");
        w.f64(self.sum as f64);
        w.key("min");
        w.u64(self.min());
        w.key("max");
        w.u64(self.max);
        w.key("mean");
        w.f64(self.mean());
        w.key("p50");
        w.u64(self.quantile(0.50));
        w.key("p95");
        w.u64(self.quantile(0.95));
        w.key("p99");
        w.u64(self.quantile(0.99));
        w.key("buckets");
        w.begin_arr();
        for (low, _, c) in self.nonzero_buckets() {
            w.begin_arr();
            w.u64(low);
            w.u64(c);
            w.end_arr();
        }
        w.end_arr();
        w.end_obj();
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Names are sorted (`BTreeMap`), so serialization order — and therefore
/// the emitted JSON — is independent of insertion order. Merging two
/// registries adds counters and bucket arrays and takes the max of
/// gauges; like [`LogHistogram::merge`] this is exact, so a sweep can
/// fold per-point registries in input order and obtain the same bytes at
/// any thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Raises gauge `name` to `v` if `v` is larger (high-water mark).
    pub fn gauge_max(&mut self, name: &str, v: i64) {
        let g = self.gauges.entry(name.to_string()).or_insert(i64::MIN);
        *g = (*g).max(v);
    }

    /// Reads gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into histogram `name` (created empty).
    pub fn hist_record(&mut self, name: &str, v: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Merges a whole histogram into histogram `name` (exact bucket-wise
    /// add, same as recording every sample individually).
    pub fn hist_merge(&mut self, name: &str, h: &LogHistogram) {
        self.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Exact merge: counters add, gauges take the max (high-water
    /// semantics), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *g = (*g).max(v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Writes the registry as a JSON object value into `w`, names sorted.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.key("counters");
        w.begin_obj();
        for (k, v) in &self.counters {
            w.key(k);
            w.u64(*v);
        }
        w.end_obj();
        w.key("gauges");
        w.begin_obj();
        for (k, v) in &self.gauges {
            w.key(k);
            w.i64(*v);
        }
        w.end_obj();
        w.key("histograms");
        w.begin_obj();
        for (k, h) in &self.hists {
            w.key(k);
            h.write_json(w);
        }
        w.end_obj();
        w.end_obj();
    }

    /// The registry as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::Check;
    use crate::rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn low_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v);
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        // Exhaustive around every power-of-two boundary plus extremes.
        let mut probes = vec![0u64, 1, u64::MAX, u64::MAX - 1];
        for p in SUB_BUCKET_BITS..64 {
            let b = 1u64 << p;
            probes.extend([b - 1, b, b + 1]);
        }
        for v in probes {
            let i = bucket_index(v);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "v={v} escaped bucket {i}: [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_at_boundaries() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_low(i)), i, "low of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i) + 1), i + 1);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..2000 {
            let v: u64 = rng.gen_range(0..u64::MAX / 2);
            let i = bucket_index(v);
            let width = bucket_high(i).saturating_sub(bucket_low(i));
            if v >= SUB_BUCKETS as u64 {
                assert!(
                    (width as f64) <= v as f64 / (SUB_BUCKETS / 2) as f64 + 1.0,
                    "bucket width {width} too wide for v={v}"
                );
            } else {
                assert_eq!(width, 0);
            }
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5000 {
            let v: u64 = rng.gen_range(0..100_000);
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact.max(1) as f64;
            assert!(err <= 0.08, "q={q}: approx {approx} vs exact {exact}");
        }
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn merge_matches_serial_recording() {
        Check::new("hist_merge_equals_serial").cases(64).run(
            |g| {
                let a: Vec<u64> = g.vec(0..40, |g| g.gen_range(0..1u64 << 40));
                let b: Vec<u64> = g.vec(0..40, |g| g.gen_range(0..1u64 << 40));
                (a, b)
            },
            |(a, b)| {
                let mut serial = LogHistogram::new();
                for &v in a.iter().chain(b) {
                    serial.record(v);
                }
                let mut ha = LogHistogram::new();
                let mut hb = LogHistogram::new();
                a.iter().for_each(|&v| ha.record(v));
                b.iter().for_each(|&v| hb.record(v));
                ha.merge(&hb);
                assert_eq!(ha, serial, "merge differs from serial recording");
            },
        );
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        Check::new("hist_merge_laws").cases(64).run(
            |g| {
                let mk = |g: &mut crate::check::Gen| {
                    let mut h = LogHistogram::new();
                    for _ in 0..g.gen_range(0..20u64) {
                        h.record(g.gen_range(0..1u64 << 50));
                    }
                    h
                };
                let a = mk(g);
                let b = mk(g);
                let c = mk(g);
                (a, b, c)
            },
            |(a, b, c)| {
                // Commutativity: a ⊕ b == b ⊕ a.
                let mut ab = a.clone();
                ab.merge(b);
                let mut ba = b.clone();
                ba.merge(a);
                assert_eq!(ab, ba, "merge is not commutative");
                // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
                let mut left = ab.clone();
                left.merge(c);
                let mut bc = b.clone();
                bc.merge(c);
                let mut right = a.clone();
                right.merge(&bc);
                assert_eq!(left, right, "merge is not associative");
            },
        );
    }

    #[test]
    fn registry_merges_and_serializes_deterministically() {
        let mut a = Registry::new();
        a.counter_add("grants", 2);
        a.gauge_max("peak_traps", 5);
        a.hist_record("wait", 10);
        let mut b = Registry::new();
        b.counter_add("grants", 3);
        b.counter_add("requests", 1);
        b.gauge_max("peak_traps", 9);
        b.hist_record("wait", 20);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json(), "registry merge not commutative");
        assert_eq!(ab.counter("grants"), 5);
        assert_eq!(ab.counter("requests"), 1);
        assert_eq!(ab.gauge("peak_traps"), Some(9));
        assert_eq!(ab.hist("wait").unwrap().count(), 2);
        // Insertion order does not leak into the document.
        let mut c = Registry::new();
        c.counter_add("z", 1);
        c.counter_add("a", 1);
        let json = c.to_json();
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        let mut w = JsonWriter::new();
        h.write_json(&mut w);
        assert!(w.finish().contains("\"count\":0"));
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn quantile_rejects_bad_q() {
        LogHistogram::new().quantile(1.5);
    }
}
