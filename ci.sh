#!/usr/bin/env bash
# Canonical offline gate for the workspace.
#
#   ./ci.sh
#
# Everything runs with the network forced off: the workspace has zero
# external dependencies, and this script proves it stays that way.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== bench smoke =="
BENCH_LOG=$(mktemp)
cargo bench -q -p atp-bench --benches -- --smoke | tee "$BENCH_LOG"

echo "== sweep bench artifact =="
# The sweep suite's JSON lines become the gate artifact for the parallel
# executor's perf numbers.
grep '^{"suite":"sweep"' "$BENCH_LOG" > BENCH_sweep.json
rm -f "$BENCH_LOG"
test -s BENCH_sweep.json
# The artifact must carry the scheduler microbenches (wheel vs heap churn)
# and the bounded large-N scaling point the smoke run emits.
grep -q '"name":"sched_wheel_churn_1k_pending"' BENCH_sweep.json
grep -q '"name":"sched_heap_churn_100k_pending"' BENCH_sweep.json
grep -q '"name":"fig9_large_binary_n10000"' BENCH_sweep.json
grep -q '"name":"fig_shards_quick"' BENCH_sweep.json
echo "wrote BENCH_sweep.json ($(wc -l < BENCH_sweep.json) entries)"

echo "== parallel determinism smoke =="
# The same quick sweep at 1 and 4 workers must print byte-identical tables.
OUT1=$(mktemp) OUT4=$(mktemp)
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin fig9 -- --quick 2>/dev/null > "$OUT1"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin fig9 -- --quick 2>/dev/null > "$OUT4"
cmp "$OUT1" "$OUT4"
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin table_fairness -- --quick 2>/dev/null > "$OUT1"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin table_fairness -- --quick 2>/dev/null > "$OUT4"
cmp "$OUT1" "$OUT4"
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin table_partition -- --quick 2>/dev/null > "$OUT1"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin table_partition -- --quick 2>/dev/null > "$OUT4"
cmp "$OUT1" "$OUT4"
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin table_shards -- --quick --shards 4 2>/dev/null > "$OUT1"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin table_shards -- --quick --shards 4 2>/dev/null > "$OUT4"
cmp "$OUT1" "$OUT4"
rm -f "$OUT1" "$OUT4"
echo "ATP_THREADS=1 and ATP_THREADS=4 outputs are byte-identical"

echo "== large-n smoke =="
# One Figure-9 point at N=10k (4 token rounds, sub-second): pushes the
# timer wheel through its overflow/cascade machinery at scale, and the
# rendered table must stay byte-identical across worker counts.
LN1=$(mktemp) LN4=$(mktemp)
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin fig9 -- --n 10000 2>/dev/null > "$LN1"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin fig9 -- --n 10000 2>/dev/null > "$LN4"
cmp "$LN1" "$LN4"
rm -f "$LN1" "$LN4"
echo "large-n (N=10k) table is byte-identical at ATP_THREADS=1 and 4"

echo "== observability smoke =="
# Trace export must produce parseable JSON lines, and the merged metrics
# artifact must be byte-identical across thread counts (exact registry
# merge — sharding cannot change a single byte).
OBS_DIR=$(mktemp -d)
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin fig9 -- --quick \
  --trace-out "$OBS_DIR/trace.jsonl" --chrome-out "$OBS_DIR/chrome.json" \
  --metrics-out "$OBS_DIR/metrics1.json" > /dev/null 2>&1
cargo run -q --release -p atp-sim --bin trace_check -- "$OBS_DIR/trace.jsonl"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin fig9 -- --quick \
  --metrics-out "$OBS_DIR/metrics4.json" > /dev/null 2>&1
cmp "$OBS_DIR/metrics1.json" "$OBS_DIR/metrics4.json"
echo "metrics artifact is byte-identical at ATP_THREADS=1 and 4"
rm -rf "$OBS_DIR"

echo "== dst smoke =="
# Deterministic simulation testing: replay every checked-in counterexample
# tape (failing on tape rot or oracle regressions), fuzz 210 fresh
# (seed, strategy) cases per protocol under adversarial delivery orders,
# and prove the detector still catches a planted prefix-comparison bug.
# Every tape on disk must actually replay (ok line per tape) — this is
# what proves the timer-wheel scheduler reproduces the recorded schedules
# byte-for-byte.
DST_LOG=$(mktemp)
cargo run -q --release -p atp-sim --bin dst -- \
  --budget 210 --tapes tests/tapes --demo-mutation | tee "$DST_LOG"
TAPES_ON_DISK=$(ls tests/tapes/*.tape | wc -l)
TAPES_REPLAYED=$(grep -c '^tape .* ok — ' "$DST_LOG")
rm -f "$DST_LOG"
if [ "$TAPES_REPLAYED" -ne "$TAPES_ON_DISK" ]; then
  echo "tape replay mismatch: $TAPES_REPLAYED replayed, $TAPES_ON_DISK on disk" >&2
  exit 1
fi
echo "all $TAPES_REPLAYED checked-in tapes replayed against the wheel scheduler"

echo "== partition dst smoke =="
# The heal-fencing adversary: every case splits the ring and heals it under
# link loss/duplication; the dual-token-after-heal oracle must hold across
# at least 100 cases per protocol. (The checked-in partition-retransmit
# tape already replayed in the step above.)
cargo run -q --release -p atp-sim --bin dst -- --budget 120 --partition

echo "== shard dst smoke =="
# The sharded multi-token plane: 100 fresh key-addressed cases per protocol
# (random K/N, crash and partition faults in one shard), each checked
# against the per-shard state oracles and the cross-shard isolation oracle
# — a fault in shard i must never block a grant in shard j.
cargo run -q --release -p atp-sim --bin dst -- --budget 100 --shard-dst

echo "== protocol conformance =="
# Every protocol variant through the same (seed x strategy x fault profile)
# matrix: identical oracle verdicts cell by cell, grant totality on benign
# cells.
cargo test -q --test protocol_conformance

echo "== naimi dst sweep =="
# The path-reversal competitor alone, at full budget: 210 fresh adversarial
# cases (Fifo/Lifo/shuffle/class-starve schedules, faults included) plus a
# partition-focused run, all oracle-clean. The sweep itself must also be
# deterministic across worker counts: the explorer output is compared
# byte-for-byte at ATP_THREADS=1 and 4.
NAIMI1=$(mktemp) NAIMI4=$(mktemp)
ATP_THREADS=1 cargo run -q --release -p atp-sim --bin dst -- \
  --budget 210 --protocol naimi | tee "$NAIMI1"
ATP_THREADS=4 cargo run -q --release -p atp-sim --bin dst -- \
  --budget 210 --protocol naimi > "$NAIMI4"
cmp <(grep -o 'clean — [0-9]* cases, [0-9]* oracle checks' "$NAIMI1") \
    <(grep -o 'clean — [0-9]* cases, [0-9]* oracle checks' "$NAIMI4")
rm -f "$NAIMI1" "$NAIMI4"
cargo run -q --release -p atp-sim --bin dst -- \
  --budget 100 --partition --protocol naimi
echo "naimi sweep clean and byte-identical across thread counts"

echo "== tcp loopback smoke =="
# Real sockets, deterministic outcome: the pinned reference script runs
# over loopback TCP (N=5, 5 requests, a few hundred virtual ticks) for
# every protocol family and the grant order + history digests must be
# byte-identical to the same script inside the deterministic World. The
# binary exits non-zero on any divergence, frame loss, decode error, or
# leaked thread; the whole matrix stays under a few seconds.
for proto in ring search binary naimi; do
  cargo run -q --release -p atp-sim --bin cluster -- \
    --conform --protocol "$proto" --transport tcp
done
echo "all four protocols conform to World over loopback TCP"

echo "== chaos recovery smoke =="
# Crash–restart recovery under wire-level chaos: every protocol family runs
# the pinned kill/restart × corruption matrix (warm and cold restarts, up to
# two victims, ~1% byte corruption under the CRC32 framing) over loopback
# TCP. The binary exits non-zero unless every scenario ends with zero
# unserved requests, no duplicate grants, no same-generation dual
# possession, every injected fault accounted for by its detector, and a
# clean thread teardown. The schedule-deterministic stdout must also be
# byte-identical across worker counts.
CH1=$(mktemp) CH4=$(mktemp)
for proto in ring search binary naimi; do
  ATP_THREADS=1 cargo run -q --release -p atp-sim --bin cluster -- \
    --chaos --protocol "$proto" --transport tcp 2>/dev/null > "$CH1"
  ATP_THREADS=4 cargo run -q --release -p atp-sim --bin cluster -- \
    --chaos --protocol "$proto" --transport tcp 2>/dev/null > "$CH4"
  cmp "$CH1" "$CH4"
done
rm -f "$CH1" "$CH4"
echo "chaos recovery matrix clean and byte-identical at ATP_THREADS=1 and 4"

echo "== dependency closure =="
# Every line of `cargo tree` must be a workspace crate: atp-* or the
# umbrella package. Anything else means a registry dependency crept in.
BAD=$(cargo tree --workspace --edges normal,build,dev --prefix none \
  | sed 's/ (\*)$//' \
  | awk 'NF { print $1 }' \
  | sort -u \
  | grep -v -E '^(atp-(util|trs|spec|net|core|sim|bench)|adaptive-token-passing)$' || true)
if [ -n "$BAD" ]; then
  echo "non-workspace dependencies found:" >&2
  echo "$BAD" >&2
  exit 1
fi
echo "dependency closure is workspace-local"

echo "== ci green =="
