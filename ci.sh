#!/usr/bin/env bash
# Canonical offline gate for the workspace.
#
#   ./ci.sh
#
# Everything runs with the network forced off: the workspace has zero
# external dependencies, and this script proves it stays that way.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== bench smoke =="
cargo bench -q -p atp-bench --benches -- --smoke

echo "== dependency closure =="
# Every line of `cargo tree` must be a workspace crate: atp-* or the
# umbrella package. Anything else means a registry dependency crept in.
BAD=$(cargo tree --workspace --edges normal,build,dev --prefix none \
  | sed 's/ (\*)$//' \
  | awk 'NF { print $1 }' \
  | sort -u \
  | grep -v -E '^(atp-(util|trs|spec|net|core|sim|bench)|adaptive-token-passing)$' || true)
if [ -n "$BAD" ]; then
  echo "non-workspace dependencies found:" >&2
  echo "$BAD" >&2
  exit 1
fi
echo "dependency closure is workspace-local"

echo "== ci green =="
