//! # adaptive-token-passing — umbrella crate
//!
//! Re-exports the whole Adaptive Token-Passing (ATP) stack, a reproduction of
//! *"Developing and Refining an Adaptive Token-Passing Strategy"* (Englert,
//! Rudolph, Shvartsman, 2001):
//!
//! * [`trs`] — executable term-rewriting engine used for the formal plane.
//! * [`spec`] — the six refinement systems (S → S1 → Token → Message-Passing
//!   → Search → BinarySearch) with machine-checked safety.
//! * [`net`] — deterministic discrete-event message-passing substrate.
//! * [`core`] — executable protocols: plain ring, linear search, and the
//!   adaptive binary-search protocol, plus mutual-exclusion and totally
//!   ordered broadcast services.
//! * [`sim`] — workloads, metrics and the experiment harness that regenerates
//!   the paper's figures and tables.
//! * [`util`] — the zero-dependency foundation: seeded RNG, property-test
//!   and micro-bench harnesses, byte buffers, JSON output.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use atp_core as core;
pub use atp_net as net;
pub use atp_sim as sim;
pub use atp_spec as spec;
pub use atp_trs as trs;
pub use atp_util as util;
