//! Property-based tests for the wire codec: every representable message
//! round-trips exactly, and arbitrary byte soup never panics the decoder.

use adaptive_token_passing::core::{
    decode_binary_msg, encode_binary_msg, BinaryMsg, Gimme, RegenMsg, RegenReply, RequestId,
    TokenFrame, TokenMode, VisitStamp,
};
use adaptive_token_passing::net::NodeId;
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u32..1024).prop_map(NodeId::new)
}

fn arb_req() -> impl Strategy<Value = RequestId> {
    (arb_node(), 0u64..u64::MAX).prop_map(|(n, s)| RequestId::new(n, s))
}

fn arb_stamp() -> impl Strategy<Value = VisitStamp> {
    (0u64..u64::MAX).prop_map(VisitStamp)
}

fn arb_frame() -> impl Strategy<Value = TokenFrame> {
    (
        1usize..6,
        proptest::collection::vec((arb_node(), 0u64..100), 0..8),
        proptest::collection::vec((arb_node(), 0u64..50), 0..6),
        proptest::collection::vec(arb_node(), 0..4),
    )
        .prop_map(|(cap, appends, satisfied, excluded)| {
            let mut frame = TokenFrame::new(cap);
            for (origin, payload) in appends {
                frame.on_possess(origin, true);
                frame.append(origin, payload);
            }
            for (origin, seq) in satisfied {
                frame.mark_satisfied(RequestId::new(origin, seq));
            }
            for node in excluded {
                frame.exclude(node);
            }
            frame
        })
}

fn arb_mode() -> impl Strategy<Value = TokenMode> {
    prop_oneof![
        Just(TokenMode::Rotate),
        Just(TokenMode::Return),
        (arb_req(), arb_node()).prop_map(|(for_req, return_to)| TokenMode::Grant {
            for_req,
            return_to
        }),
        (
            arb_req(),
            arb_node(),
            proptest::collection::vec(arb_node(), 0..6)
        )
            .prop_map(|(for_req, return_to, trail)| TokenMode::CleanupHop {
                for_req,
                return_to,
                trail
            }),
    ]
}

fn arb_msg() -> impl Strategy<Value = BinaryMsg> {
    prop_oneof![
        (arb_frame(), arb_mode()).prop_map(|(frame, mode)| BinaryMsg::Token { frame, mode }),
        (
            arb_node(),
            arb_req(),
            arb_stamp(),
            0u32..4096,
            proptest::collection::vec(arb_node(), 0..8)
        )
            .prop_map(|(origin, req, origin_stamp, span, trail)| BinaryMsg::Gimme(Gimme {
                origin,
                req,
                origin_stamp,
                span,
                trail
            })),
        (arb_node(), arb_req(), 0u32..4096).prop_map(|(origin, req, span)| {
            BinaryMsg::DirectedProbe { origin, req, span }
        }),
        (arb_node(), arb_stamp(), arb_req(), 0u32..4096).prop_map(
            |(probed, stamp, req, span)| BinaryMsg::DirectedReply {
                probed,
                stamp,
                req,
                span
            }
        ),
        (arb_node(), 0u32..4096).prop_map(|(holder, span)| BinaryMsg::ProbeReq { holder, span }),
        (arb_node(), arb_req()).prop_map(|(origin, req)| BinaryMsg::ProbeHit { origin, req }),
        (0u32..100).prop_map(|generation| BinaryMsg::Regen(RegenMsg::Inquiry { generation })),
        (
            0u32..100,
            arb_stamp(),
            any::<bool>(),
            proptest::option::of(arb_node()),
            0u64..10_000
        )
            .prop_map(|(generation, stamp, holder, passed_to, applied_seq)| {
                BinaryMsg::Regen(RegenMsg::Reply(RegenReply {
                    generation,
                    stamp,
                    holder,
                    passed_to,
                    applied_seq,
                }))
            }),
        (
            0u32..100,
            0u64..10_000,
            proptest::collection::vec(arb_node(), 0..5)
        )
            .prop_map(|(new_gen, known_seq, dead)| BinaryMsg::Regen(RegenMsg::Please {
                new_gen,
                known_seq,
                dead
            })),
        Just(BinaryMsg::Regen(RegenMsg::Rejoin)),
    ]
}

proptest! {
    #[test]
    fn every_message_roundtrips(msg in arb_msg()) {
        let bytes = encode_binary_msg(&msg);
        let back = decode_binary_msg(&bytes).expect("decode");
        // BinaryMsg lacks PartialEq on purpose (Apply closures elsewhere);
        // Debug equality is exact for these data-only messages.
        prop_assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_binary_msg(&bytes);
    }

    #[test]
    fn truncation_always_errors_or_decodes_prefix_free(msg in arb_msg()) {
        // A strict prefix of a valid frame must not decode into the same
        // message (framing is unambiguous).
        let bytes = encode_binary_msg(&msg);
        if bytes.len() > 1 {
            let cut = &bytes[..bytes.len() - 1];
            if let Ok(other) = decode_binary_msg(cut) {
                prop_assert_ne!(format!("{msg:?}"), format!("{other:?}"));
            }
        }
    }
}
