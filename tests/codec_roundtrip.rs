//! Property-based tests for the wire codec: every representable message
//! round-trips exactly, and arbitrary byte soup never panics the decoder.
//! Runs on the in-repo `atp_util::check` harness.
//!
//! The fuzz corpus lives in `tests/common/corpus.rs` (shared with the
//! streaming-framer tests) and is driven by the codec's own exhaustive tag
//! lists: for every listed tag of every framing there is exactly one
//! generator arm, and [`corpus_covers_every_known_tag`] proves each arm
//! emits its tag. A message type added to the codec without a generator arm
//! panics the corpus immediately — new frames cannot dodge mutation and
//! truncation coverage.

#[path = "common/corpus.rs"]
mod corpus;

use adaptive_token_passing::core::{
    decode_binary_msg, decode_naimi_msg, decode_ring_msg, decode_search_msg, encode_binary_msg,
    encode_naimi_msg, encode_ring_msg, encode_search_msg, known_binary_tags, known_naimi_tags,
    known_ring_tags, known_search_tags, naimi_encoded_len, ring_encoded_len, search_encoded_len,
    BinaryMsg, CodecError, Gimme, RequestId, VisitStamp,
};
use adaptive_token_passing::net::NodeId;
use adaptive_token_passing::util::check::{Check, Gen};
use adaptive_token_passing::util::rng::Rng;
use corpus::{
    arb_msg, arb_naimi_msg, arb_ring_msg, arb_search_msg, binary_msg_for_tag, corrupt_one_byte,
    naimi_msg_for_tag, ring_msg_for_tag, search_msg_for_tag,
};

/// Every generator arm produces the tag it claims, for the entire known
/// tag list of all four framings. This is the anchor that makes the fuzz
/// corpus exhaustive: `known_*_tags()` is asserted against the decoders in
/// the codec's own unit tests, and here against the generators.
#[test]
fn corpus_covers_every_known_tag() {
    let mut g = Gen::from_seed(0xc0dec);
    for &tag in known_binary_tags() {
        let bytes = encode_binary_msg(&binary_msg_for_tag(tag, &mut g));
        assert_eq!(bytes[0], tag, "binary generator for {tag:#04x} drifted");
    }
    for &tag in known_naimi_tags() {
        let bytes = encode_naimi_msg(&naimi_msg_for_tag(tag, &mut g));
        assert_eq!(bytes[0], tag, "naimi generator for {tag:#04x} drifted");
    }
    for &tag in known_ring_tags() {
        let bytes = encode_ring_msg(&ring_msg_for_tag(tag, &mut g));
        assert_eq!(bytes[0], tag, "ring generator for {tag:#04x} drifted");
    }
    for &tag in known_search_tags() {
        let bytes = encode_search_msg(&search_msg_for_tag(tag, &mut g));
        assert_eq!(bytes[0], tag, "search generator for {tag:#04x} drifted");
    }
}

#[test]
fn every_message_roundtrips() {
    Check::new("every_message_roundtrips").run(arb_msg, |msg| {
        let bytes = encode_binary_msg(msg);
        let back = decode_binary_msg(&bytes).expect("decode");
        // BinaryMsg lacks PartialEq on purpose (Apply closures elsewhere);
        // Debug equality is exact for these data-only messages.
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn every_naimi_message_roundtrips() {
    Check::new("every_naimi_message_roundtrips").run(arb_naimi_msg, |msg| {
        let bytes = encode_naimi_msg(msg);
        assert_eq!(bytes.len(), naimi_encoded_len(msg));
        let back = decode_naimi_msg(&bytes).expect("decode");
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn every_ring_message_roundtrips() {
    Check::new("every_ring_message_roundtrips").run(arb_ring_msg, |msg| {
        let bytes = encode_ring_msg(msg);
        assert_eq!(bytes.len(), ring_encoded_len(msg));
        let back = decode_ring_msg(&bytes).expect("decode");
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn every_search_message_roundtrips() {
    Check::new("every_search_message_roundtrips").run(arb_search_msg, |msg| {
        let bytes = encode_search_msg(msg);
        assert_eq!(bytes.len(), search_encoded_len(msg));
        let back = decode_search_msg(&bytes).expect("decode");
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn decoder_never_panics_on_garbage() {
    Check::new("decoder_never_panics_on_garbage").run(
        |g| g.vec(0..256, |g| g.gen_range(0u8..=u8::MAX)),
        |bytes| {
            let _ = decode_binary_msg(bytes);
            let _ = decode_naimi_msg(bytes);
            let _ = decode_ring_msg(bytes);
            let _ = decode_search_msg(bytes);
        },
    );
}

/// Seeded byte-mutation fuzzing: corrupting a valid frame anywhere must
/// produce a clean outcome — `Ok` of some (other) message or a structured
/// `CodecError` — never a panic, and never an attempt to honor an absurd
/// length prefix. Runs over the exhaustive corpora of all four framings.
#[test]
fn seeded_byte_mutations_are_rejected_not_panicked_on() {
    Check::new("seeded_byte_mutations_are_rejected_not_panicked_on").run(
        |g| {
            let bytes = match g.gen_range(0u32..4) {
                0 => encode_binary_msg(&arb_msg(g)),
                1 => encode_naimi_msg(&arb_naimi_msg(g)),
                2 => encode_ring_msg(&arb_ring_msg(g)),
                _ => encode_search_msg(&arb_search_msg(g)),
            };
            let flips = g.vec(1..6, |g| {
                (g.gen_range(0usize..4096), g.gen_range(1u8..=u8::MAX))
            });
            (bytes, flips)
        },
        |(bytes, flips)| {
            let mut bytes = bytes.clone();
            for &(pos, mask) in flips {
                let idx = pos % bytes.len();
                bytes[idx] ^= mask;
            }
            // Must return, never panic; both outcomes are acceptable
            // because a flip can land on a don't-care payload byte.
            let _ = decode_binary_msg(&bytes);
            let _ = decode_naimi_msg(&bytes);
            let _ = decode_ring_msg(&bytes);
            let _ = decode_search_msg(&bytes);
        },
    );
}

/// Every tag *outside* a decoder's known list is a structured rejection,
/// not a guess — for all 256 tag bytes, derived from the lists themselves.
/// Each framing's tags are unknown to every other framing's decoder.
#[test]
fn unknown_tags_are_bad_tag_errors() {
    let mut g = Gen::from_seed(0xbad_7a6);
    // A long valid payload, so rejection is attributable to the tag alone.
    let mut binary_bytes = encode_binary_msg(&binary_msg_for_tag(0x10, &mut g));
    let mut naimi_bytes = encode_naimi_msg(&naimi_msg_for_tag(0x40, &mut g));
    let mut ring_bytes = encode_ring_msg(&ring_msg_for_tag(0x30, &mut g));
    let mut search_bytes = encode_search_msg(&search_msg_for_tag(0x3a, &mut g));
    for tag in 0u8..=u8::MAX {
        if !known_binary_tags().contains(&tag) {
            binary_bytes[0] = tag;
            match decode_binary_msg(&binary_bytes) {
                Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
                other => panic!("binary: tag {tag:#04x} decoded as {other:?}"),
            }
        }
        if !known_naimi_tags().contains(&tag) {
            naimi_bytes[0] = tag;
            match decode_naimi_msg(&naimi_bytes) {
                Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
                other => panic!("naimi: tag {tag:#04x} decoded as {other:?}"),
            }
        }
        if !known_ring_tags().contains(&tag) {
            ring_bytes[0] = tag;
            match decode_ring_msg(&ring_bytes) {
                Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
                other => panic!("ring: tag {tag:#04x} decoded as {other:?}"),
            }
        }
        if !known_search_tags().contains(&tag) {
            search_bytes[0] = tag;
            match decode_search_msg(&search_bytes) {
                Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
                other => panic!("search: tag {tag:#04x} decoded as {other:?}"),
            }
        }
    }
}

/// Inflating a length prefix to the u32 maximum must yield `Truncated`,
/// not a 16 GiB allocation: the decoder checks `remaining` before
/// collecting. The trail length is the final u32 of an empty-trail Gimme.
#[test]
fn inflated_length_prefix_is_truncated_error() {
    let msg = BinaryMsg::Gimme(Gimme {
        origin: NodeId::new(1),
        req: RequestId::new(NodeId::new(1), 1),
        origin_stamp: VisitStamp(9),
        span: 2,
        trail: Vec::new(),
    });
    let mut bytes = encode_binary_msg(&msg);
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_binary_msg(&bytes),
        Err(CodecError::Truncated)
    ));
}

#[test]
fn truncation_always_errors_or_decodes_prefix_free() {
    Check::new("truncation_always_errors_or_decodes_prefix_free").run(arb_msg, |msg| {
        // A strict prefix of a valid frame must not decode into the same
        // message (framing is unambiguous).
        let bytes = encode_binary_msg(msg);
        if bytes.len() > 1 {
            let cut = &bytes[..bytes.len() - 1];
            if let Ok(other) = decode_binary_msg(cut) {
                assert_ne!(format!("{msg:?}"), format!("{other:?}"));
            }
        }
    });
}

/// Ring-framing corrupted-byte negatives, over every ring tag arm: a
/// seeded single-byte flip must yield a structured error or a clean
/// decode of some *other* frame — and a flipped tag byte can never decode
/// back to the original message.
#[test]
fn ring_byte_corruption_is_rejected_or_reinterpreted_never_honored() {
    Check::new("ring_byte_corruption_is_rejected_or_reinterpreted_never_honored").run(
        |g| {
            let msg = arb_ring_msg(g);
            let mut bytes = encode_ring_msg(&msg);
            let (idx, _) = corrupt_one_byte(&mut bytes, g);
            (format!("{msg:?}"), bytes, idx)
        },
        |(original, bytes, idx)| match decode_ring_msg(bytes) {
            Ok(other) => {
                if *idx == 0 {
                    assert_ne!(
                        &format!("{other:?}"),
                        original,
                        "a flipped tag byte decoded back to the original ring message"
                    );
                }
            }
            Err(e) => assert!(
                matches!(e, CodecError::BadTag(_) | CodecError::Truncated),
                "unstructured ring decode error: {e:?}"
            ),
        },
    );
}

/// Search-framing corrupted-byte negatives, over every search tag arm —
/// same contract as the ring case.
#[test]
fn search_byte_corruption_is_rejected_or_reinterpreted_never_honored() {
    Check::new("search_byte_corruption_is_rejected_or_reinterpreted_never_honored").run(
        |g| {
            let msg = arb_search_msg(g);
            let mut bytes = encode_search_msg(&msg);
            let (idx, _) = corrupt_one_byte(&mut bytes, g);
            (format!("{msg:?}"), bytes, idx)
        },
        |(original, bytes, idx)| match decode_search_msg(bytes) {
            Ok(other) => {
                if *idx == 0 {
                    assert_ne!(
                        &format!("{other:?}"),
                        original,
                        "a flipped tag byte decoded back to the original search message"
                    );
                }
            }
            Err(e) => assert!(
                matches!(e, CodecError::BadTag(_) | CodecError::Truncated),
                "unstructured search decode error: {e:?}"
            ),
        },
    );
}

#[test]
fn ring_truncation_always_errors_or_decodes_prefix_free() {
    Check::new("ring_truncation_always_errors_or_decodes_prefix_free").run(
        arb_ring_msg,
        |msg| {
            let bytes = encode_ring_msg(msg);
            if bytes.len() > 1 {
                let cut = &bytes[..bytes.len() - 1];
                if let Ok(other) = decode_ring_msg(cut) {
                    assert_ne!(format!("{msg:?}"), format!("{other:?}"));
                }
            }
        },
    );
}

#[test]
fn search_truncation_always_errors_or_decodes_prefix_free() {
    Check::new("search_truncation_always_errors_or_decodes_prefix_free").run(
        arb_search_msg,
        |msg| {
            let bytes = encode_search_msg(msg);
            if bytes.len() > 1 {
                let cut = &bytes[..bytes.len() - 1];
                if let Ok(other) = decode_search_msg(cut) {
                    assert_ne!(format!("{msg:?}"), format!("{other:?}"));
                }
            }
        },
    );
}

#[test]
fn naimi_truncation_always_errors_or_decodes_prefix_free() {
    Check::new("naimi_truncation_always_errors_or_decodes_prefix_free").run(
        arb_naimi_msg,
        |msg| {
            let bytes = encode_naimi_msg(msg);
            if bytes.len() > 1 {
                let cut = &bytes[..bytes.len() - 1];
                if let Ok(other) = decode_naimi_msg(cut) {
                    assert_ne!(format!("{msg:?}"), format!("{other:?}"));
                }
            }
        },
    );
}
