//! Property-based tests for the wire codec: every representable message
//! round-trips exactly, and arbitrary byte soup never panics the decoder.
//! Runs on the in-repo `atp_util::check` harness.
//!
//! The fuzz corpus is driven by the codec's own exhaustive tag lists
//! ([`known_binary_tags`] / [`known_naimi_tags`]): for every listed tag
//! there is exactly one generator arm, and [`corpus_covers_every_known_tag`]
//! proves each arm emits its tag. A message type added to the codec without
//! a generator arm panics the corpus immediately — new frames cannot dodge
//! mutation and truncation coverage.

use adaptive_token_passing::core::{
    decode_binary_msg, decode_naimi_msg, encode_binary_msg, encode_naimi_msg, known_binary_tags,
    known_naimi_tags, naimi_encoded_len, BinaryMsg, CodecError, Gimme, LogEntry, NaimiMsg,
    RegenMsg, RegenReply, RequestId, TokenFrame, TokenMode, VisitStamp,
};
use adaptive_token_passing::net::NodeId;
use adaptive_token_passing::util::check::{Check, Gen};
use adaptive_token_passing::util::rng::Rng;

fn arb_node(g: &mut Gen) -> NodeId {
    NodeId::new(g.gen_range(0u32..1024))
}

fn arb_req(g: &mut Gen) -> RequestId {
    let n = arb_node(g);
    RequestId::new(n, g.gen_range(0..u64::MAX))
}

fn arb_stamp(g: &mut Gen) -> VisitStamp {
    VisitStamp(g.gen_range(0..u64::MAX))
}

fn arb_frame(g: &mut Gen) -> TokenFrame {
    let cap = g.gen_range(1usize..6);
    let appends = g.vec(0..8, |g| (arb_node(g), g.gen_range(0u64..100)));
    let satisfied = g.vec(0..6, |g| (arb_node(g), g.gen_range(0u64..50)));
    let excluded = g.vec(0..4, arb_node);
    let mut frame = TokenFrame::new(cap);
    for (origin, payload) in appends {
        frame.on_possess(origin, true);
        frame.append(origin, payload);
    }
    for (origin, seq) in satisfied {
        frame.mark_satisfied(RequestId::new(origin, seq));
    }
    for node in excluded {
        frame.exclude(node);
    }
    frame
}

/// The regen frame behind one of the shared `0x20`-block tags.
fn regen_msg_for_tag(tag: u8, g: &mut Gen) -> RegenMsg {
    match tag {
        0x20 => RegenMsg::Inquiry {
            generation: g.gen_range(0u32..100),
        },
        0x21 => RegenMsg::Reply(RegenReply {
            generation: g.gen_range(0u32..100),
            stamp: arb_stamp(g),
            holder: g.gen_bool(0.5),
            passed_to: if g.gen_bool(0.5) {
                Some(arb_node(g))
            } else {
                None
            },
            applied_seq: g.gen_range(0u64..10_000),
        }),
        0x22 => RegenMsg::Please {
            new_gen: g.gen_range(0u32..100),
            known_seq: g.gen_range(0u64..10_000),
            dead: g.vec(0..5, arb_node),
        },
        0x23 => RegenMsg::Rejoin,
        0x24 => RegenMsg::Leave,
        0x25 => RegenMsg::SyncRequest {
            from_seq: g.gen_range(0u64..10_000),
        },
        0x26 => RegenMsg::SyncReply {
            entries: g.vec(0..6, |g| LogEntry {
                seq: g.gen_range(0u64..10_000),
                origin: arb_node(g),
                payload: g.gen_range(0u64..1000),
                round: g.gen_range(0u64..500),
            }),
        },
        0x27 => RegenMsg::TokenAck {
            generation: g.gen_range(0u32..100),
            transfer_seq: g.gen_range(0u64..10_000),
        },
        0x28 => RegenMsg::GenAnnounce {
            generation: g.gen_range(0u32..100),
        },
        other => panic!("no regen generator for tag {other:#04x} — codec grew a frame the fuzz corpus does not cover"),
    }
}

/// One [`BinaryMsg`] that encodes to exactly `tag`.
fn binary_msg_for_tag(tag: u8, g: &mut Gen) -> BinaryMsg {
    match tag {
        0x01 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::Rotate,
        },
        0x02 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::Grant {
                for_req: arb_req(g),
                return_to: arb_node(g),
            },
        },
        0x03 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::CleanupHop {
                for_req: arb_req(g),
                return_to: arb_node(g),
                trail: g.vec(0..6, arb_node),
            },
        },
        0x04 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::Return,
        },
        0x10 => BinaryMsg::Gimme(Gimme {
            origin: arb_node(g),
            req: arb_req(g),
            origin_stamp: arb_stamp(g),
            span: g.gen_range(0u32..4096),
            trail: g.vec(0..8, arb_node),
        }),
        0x11 => BinaryMsg::DirectedProbe {
            origin: arb_node(g),
            req: arb_req(g),
            span: g.gen_range(0u32..4096),
        },
        0x12 => BinaryMsg::DirectedReply {
            probed: arb_node(g),
            stamp: arb_stamp(g),
            req: arb_req(g),
            span: g.gen_range(0u32..4096),
        },
        0x13 => BinaryMsg::ProbeReq {
            holder: arb_node(g),
            span: g.gen_range(0u32..4096),
        },
        0x14 => BinaryMsg::ProbeHit {
            origin: arb_node(g),
            req: arb_req(g),
        },
        regen => BinaryMsg::Regen(regen_msg_for_tag(regen, g)),
    }
}

/// One [`NaimiMsg`] that encodes to exactly `tag`.
fn naimi_msg_for_tag(tag: u8, g: &mut Gen) -> NaimiMsg {
    match tag {
        0x40 => NaimiMsg::Request {
            origin: arb_node(g),
            req: arb_req(g),
            attempt: g.gen_range(0u32..16),
            hops: g.gen_range(0u32..64),
        },
        0x41 => NaimiMsg::Token {
            frame: Box::new(arb_frame(g)),
            grant_for: None,
        },
        0x42 => NaimiMsg::Token {
            frame: Box::new(arb_frame(g)),
            grant_for: Some(arb_req(g)),
        },
        regen => NaimiMsg::Regen(regen_msg_for_tag(regen, g)),
    }
}

fn arb_msg(g: &mut Gen) -> BinaryMsg {
    binary_msg_for_tag(*g.pick(known_binary_tags()), g)
}

fn arb_naimi_msg(g: &mut Gen) -> NaimiMsg {
    naimi_msg_for_tag(*g.pick(known_naimi_tags()), g)
}

/// Every generator arm produces the tag it claims, for the entire known
/// tag list of both framings. This is the anchor that makes the fuzz
/// corpus exhaustive: `known_*_tags()` is asserted against the decoders in
/// the codec's own unit tests, and here against the generators.
#[test]
fn corpus_covers_every_known_tag() {
    let mut g = Gen::from_seed(0xc0dec);
    for &tag in known_binary_tags() {
        let bytes = encode_binary_msg(&binary_msg_for_tag(tag, &mut g));
        assert_eq!(bytes[0], tag, "binary generator for {tag:#04x} drifted");
    }
    for &tag in known_naimi_tags() {
        let bytes = encode_naimi_msg(&naimi_msg_for_tag(tag, &mut g));
        assert_eq!(bytes[0], tag, "naimi generator for {tag:#04x} drifted");
    }
}

#[test]
fn every_message_roundtrips() {
    Check::new("every_message_roundtrips").run(arb_msg, |msg| {
        let bytes = encode_binary_msg(msg);
        let back = decode_binary_msg(&bytes).expect("decode");
        // BinaryMsg lacks PartialEq on purpose (Apply closures elsewhere);
        // Debug equality is exact for these data-only messages.
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn every_naimi_message_roundtrips() {
    Check::new("every_naimi_message_roundtrips").run(arb_naimi_msg, |msg| {
        let bytes = encode_naimi_msg(msg);
        assert_eq!(bytes.len(), naimi_encoded_len(msg));
        let back = decode_naimi_msg(&bytes).expect("decode");
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn decoder_never_panics_on_garbage() {
    Check::new("decoder_never_panics_on_garbage").run(
        |g| g.vec(0..256, |g| g.gen_range(0u8..=u8::MAX)),
        |bytes| {
            let _ = decode_binary_msg(bytes);
            let _ = decode_naimi_msg(bytes);
        },
    );
}

/// Seeded byte-mutation fuzzing: corrupting a valid frame anywhere must
/// produce a clean outcome — `Ok` of some (other) message or a structured
/// `CodecError` — never a panic, and never an attempt to honor an absurd
/// length prefix. Runs over the exhaustive corpora of both framings.
#[test]
fn seeded_byte_mutations_are_rejected_not_panicked_on() {
    Check::new("seeded_byte_mutations_are_rejected_not_panicked_on").run(
        |g| {
            let bytes = if g.gen_bool(0.5) {
                encode_binary_msg(&arb_msg(g))
            } else {
                encode_naimi_msg(&arb_naimi_msg(g))
            };
            let flips = g.vec(1..6, |g| {
                (g.gen_range(0usize..4096), g.gen_range(1u8..=u8::MAX))
            });
            (bytes, flips)
        },
        |(bytes, flips)| {
            let mut bytes = bytes.clone();
            for &(pos, mask) in flips {
                let idx = pos % bytes.len();
                bytes[idx] ^= mask;
            }
            // Must return, never panic; both outcomes are acceptable
            // because a flip can land on a don't-care payload byte.
            let _ = decode_binary_msg(&bytes);
            let _ = decode_naimi_msg(&bytes);
        },
    );
}

/// Every tag *outside* a decoder's known list is a structured rejection,
/// not a guess — for all 256 tag bytes, derived from the lists themselves.
/// The naimi tags are unknown to the binary decoder and vice versa.
#[test]
fn unknown_tags_are_bad_tag_errors() {
    let mut g = Gen::from_seed(0xbad_7a6);
    // A long valid payload, so rejection is attributable to the tag alone.
    let mut binary_bytes = encode_binary_msg(&binary_msg_for_tag(0x10, &mut g));
    let mut naimi_bytes = encode_naimi_msg(&naimi_msg_for_tag(0x40, &mut g));
    for tag in 0u8..=u8::MAX {
        if !known_binary_tags().contains(&tag) {
            binary_bytes[0] = tag;
            match decode_binary_msg(&binary_bytes) {
                Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
                other => panic!("binary: tag {tag:#04x} decoded as {other:?}"),
            }
        }
        if !known_naimi_tags().contains(&tag) {
            naimi_bytes[0] = tag;
            match decode_naimi_msg(&naimi_bytes) {
                Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
                other => panic!("naimi: tag {tag:#04x} decoded as {other:?}"),
            }
        }
    }
}

/// Inflating a length prefix to the u32 maximum must yield `Truncated`,
/// not a 16 GiB allocation: the decoder checks `remaining` before
/// collecting. The trail length is the final u32 of an empty-trail Gimme.
#[test]
fn inflated_length_prefix_is_truncated_error() {
    let msg = BinaryMsg::Gimme(Gimme {
        origin: NodeId::new(1),
        req: RequestId::new(NodeId::new(1), 1),
        origin_stamp: VisitStamp(9),
        span: 2,
        trail: Vec::new(),
    });
    let mut bytes = encode_binary_msg(&msg);
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_binary_msg(&bytes),
        Err(CodecError::Truncated)
    ));
}

#[test]
fn truncation_always_errors_or_decodes_prefix_free() {
    Check::new("truncation_always_errors_or_decodes_prefix_free").run(arb_msg, |msg| {
        // A strict prefix of a valid frame must not decode into the same
        // message (framing is unambiguous).
        let bytes = encode_binary_msg(msg);
        if bytes.len() > 1 {
            let cut = &bytes[..bytes.len() - 1];
            if let Ok(other) = decode_binary_msg(cut) {
                assert_ne!(format!("{msg:?}"), format!("{other:?}"));
            }
        }
    });
}

#[test]
fn naimi_truncation_always_errors_or_decodes_prefix_free() {
    Check::new("naimi_truncation_always_errors_or_decodes_prefix_free").run(
        arb_naimi_msg,
        |msg| {
            let bytes = encode_naimi_msg(msg);
            if bytes.len() > 1 {
                let cut = &bytes[..bytes.len() - 1];
                if let Ok(other) = decode_naimi_msg(cut) {
                    assert_ne!(format!("{msg:?}"), format!("{other:?}"));
                }
            }
        },
    );
}
