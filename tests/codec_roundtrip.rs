//! Property-based tests for the wire codec: every representable message
//! round-trips exactly, and arbitrary byte soup never panics the decoder.
//! Runs on the in-repo `atp_util::check` harness.

use adaptive_token_passing::core::{
    decode_binary_msg, encode_binary_msg, BinaryMsg, CodecError, Gimme, RegenMsg, RegenReply,
    RequestId, TokenFrame, TokenMode, VisitStamp,
};
use adaptive_token_passing::net::NodeId;
use adaptive_token_passing::util::check::{Check, Gen};
use adaptive_token_passing::util::rng::Rng;

fn arb_node(g: &mut Gen) -> NodeId {
    NodeId::new(g.gen_range(0u32..1024))
}

fn arb_req(g: &mut Gen) -> RequestId {
    let n = arb_node(g);
    RequestId::new(n, g.gen_range(0..u64::MAX))
}

fn arb_stamp(g: &mut Gen) -> VisitStamp {
    VisitStamp(g.gen_range(0..u64::MAX))
}

fn arb_frame(g: &mut Gen) -> TokenFrame {
    let cap = g.gen_range(1usize..6);
    let appends = g.vec(0..8, |g| (arb_node(g), g.gen_range(0u64..100)));
    let satisfied = g.vec(0..6, |g| (arb_node(g), g.gen_range(0u64..50)));
    let excluded = g.vec(0..4, arb_node);
    let mut frame = TokenFrame::new(cap);
    for (origin, payload) in appends {
        frame.on_possess(origin, true);
        frame.append(origin, payload);
    }
    for (origin, seq) in satisfied {
        frame.mark_satisfied(RequestId::new(origin, seq));
    }
    for node in excluded {
        frame.exclude(node);
    }
    frame
}

fn arb_mode(g: &mut Gen) -> TokenMode {
    match g.gen_range(0u8..4) {
        0 => TokenMode::Rotate,
        1 => TokenMode::Return,
        2 => TokenMode::Grant {
            for_req: arb_req(g),
            return_to: arb_node(g),
        },
        _ => TokenMode::CleanupHop {
            for_req: arb_req(g),
            return_to: arb_node(g),
            trail: g.vec(0..6, arb_node),
        },
    }
}

fn arb_msg(g: &mut Gen) -> BinaryMsg {
    match g.gen_range(0u8..10) {
        0 => BinaryMsg::Token {
            frame: arb_frame(g),
            mode: arb_mode(g),
        },
        1 => BinaryMsg::Gimme(Gimme {
            origin: arb_node(g),
            req: arb_req(g),
            origin_stamp: arb_stamp(g),
            span: g.gen_range(0u32..4096),
            trail: g.vec(0..8, arb_node),
        }),
        2 => BinaryMsg::DirectedProbe {
            origin: arb_node(g),
            req: arb_req(g),
            span: g.gen_range(0u32..4096),
        },
        3 => BinaryMsg::DirectedReply {
            probed: arb_node(g),
            stamp: arb_stamp(g),
            req: arb_req(g),
            span: g.gen_range(0u32..4096),
        },
        4 => BinaryMsg::ProbeReq {
            holder: arb_node(g),
            span: g.gen_range(0u32..4096),
        },
        5 => BinaryMsg::ProbeHit {
            origin: arb_node(g),
            req: arb_req(g),
        },
        6 => BinaryMsg::Regen(RegenMsg::Inquiry {
            generation: g.gen_range(0u32..100),
        }),
        7 => BinaryMsg::Regen(RegenMsg::Reply(RegenReply {
            generation: g.gen_range(0u32..100),
            stamp: arb_stamp(g),
            holder: g.gen_bool(0.5),
            passed_to: if g.gen_bool(0.5) {
                Some(arb_node(g))
            } else {
                None
            },
            applied_seq: g.gen_range(0u64..10_000),
        })),
        8 => BinaryMsg::Regen(RegenMsg::Please {
            new_gen: g.gen_range(0u32..100),
            known_seq: g.gen_range(0u64..10_000),
            dead: g.vec(0..5, arb_node),
        }),
        _ => BinaryMsg::Regen(RegenMsg::Rejoin),
    }
}

#[test]
fn every_message_roundtrips() {
    Check::new("every_message_roundtrips").run(arb_msg, |msg| {
        let bytes = encode_binary_msg(msg);
        let back = decode_binary_msg(&bytes).expect("decode");
        // BinaryMsg lacks PartialEq on purpose (Apply closures elsewhere);
        // Debug equality is exact for these data-only messages.
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    });
}

#[test]
fn decoder_never_panics_on_garbage() {
    Check::new("decoder_never_panics_on_garbage").run(
        |g| g.vec(0..256, |g| g.gen_range(0u8..=u8::MAX)),
        |bytes| {
            let _ = decode_binary_msg(bytes);
        },
    );
}

/// Seeded byte-mutation fuzzing: corrupting a valid frame anywhere must
/// produce a clean outcome — `Ok` of some (other) message or a structured
/// `CodecError` — never a panic, and never an attempt to honor an absurd
/// length prefix.
#[test]
fn seeded_byte_mutations_are_rejected_not_panicked_on() {
    Check::new("seeded_byte_mutations_are_rejected_not_panicked_on").run(
        |g| {
            let msg = arb_msg(g);
            let flips = g.vec(1..6, |g| {
                (g.gen_range(0usize..4096), g.gen_range(1u8..=u8::MAX))
            });
            (msg, flips)
        },
        |(msg, flips)| {
            let mut bytes = encode_binary_msg(msg);
            for &(pos, mask) in flips {
                let idx = pos % bytes.len();
                bytes[idx] ^= mask;
            }
            // Must return, never panic; both outcomes are acceptable
            // because a flip can land on a don't-care payload byte.
            let _ = decode_binary_msg(&bytes);
        },
    );
}

/// An unknown tag byte is a structured rejection, not a guess.
#[test]
fn unknown_tags_are_bad_tag_errors() {
    for tag in [0x00u8, 0x05, 0x0f, 0x30, 0x7f, 0xff] {
        let mut bytes = encode_binary_msg(&BinaryMsg::Regen(RegenMsg::Rejoin));
        bytes[0] = tag;
        match decode_binary_msg(&bytes) {
            Err(CodecError::BadTag(t)) => assert_eq!(t, tag),
            other => panic!("tag {tag:#x} decoded as {other:?}"),
        }
    }
}

/// Inflating a length prefix to the u32 maximum must yield `Truncated`,
/// not a 16 GiB allocation: the decoder checks `remaining` before
/// collecting. The trail length is the final u32 of an empty-trail Gimme.
#[test]
fn inflated_length_prefix_is_truncated_error() {
    let msg = BinaryMsg::Gimme(Gimme {
        origin: NodeId::new(1),
        req: RequestId::new(NodeId::new(1), 1),
        origin_stamp: VisitStamp(9),
        span: 2,
        trail: Vec::new(),
    });
    let mut bytes = encode_binary_msg(&msg);
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_binary_msg(&bytes),
        Err(CodecError::Truncated)
    ));
}

#[test]
fn truncation_always_errors_or_decodes_prefix_free() {
    Check::new("truncation_always_errors_or_decodes_prefix_free").run(arb_msg, |msg| {
        // A strict prefix of a valid frame must not decode into the same
        // message (framing is unambiguous).
        let bytes = encode_binary_msg(msg);
        if bytes.len() > 1 {
            let cut = &bytes[..bytes.len() - 1];
            if let Ok(other) = decode_binary_msg(cut) {
                assert_ne!(format!("{msg:?}"), format!("{other:?}"));
            }
        }
    });
}
