//! Torn-read tests for the streaming length-prefixed framer that carries
//! codec frames over TCP: the full tag-driven corpus (every known tag of
//! all four framings, from `tests/common/corpus.rs`) is pushed through
//! [`FrameDecoder`] split at **every** byte boundary, one byte at a time,
//! and in seeded random chunkings — the reassembled frames must be
//! byte-identical every time. Negative cases (truncated prefix, oversized
//! declared length, mid-frame disconnect) must produce typed errors, never
//! panics.

#[path = "common/corpus.rs"]
mod corpus;

use adaptive_token_passing::net::frame::{
    write_frame, FrameDecoder, FrameError, FRAME_HEADER_LEN, FRAME_TRAILER_LEN, MAX_FRAME_LEN,
};
use adaptive_token_passing::util::check::{Check, Gen};
use adaptive_token_passing::util::rng::Rng;
use corpus::encoded_corpus;

/// The corpus as one framed wire image plus the expected frame sequence.
fn corpus_wire(seed: u64) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut g = Gen::from_seed(seed);
    let frames = encoded_corpus(&mut g);
    let mut wire = Vec::new();
    for f in &frames {
        write_frame(&mut wire, f);
    }
    (wire, frames)
}

fn decode_all(dec: &mut FrameDecoder) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(f) = dec.next_frame().expect("well-formed corpus") {
        out.push(f);
    }
    out
}

/// Every split point of the whole corpus stream: deliver `wire[..i]` then
/// `wire[i..]` and require the byte-identical frame sequence. This sweeps a
/// tear through every offset of every frame — inside length prefixes,
/// inside payloads, and exactly on boundaries.
#[test]
fn every_byte_boundary_split_reassembles_identically() {
    let (wire, expect) = corpus_wire(0x7ea5);
    for i in 0..=wire.len() {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        dec.push(&wire[..i]);
        got.extend(decode_all(&mut dec));
        dec.push(&wire[i..]);
        got.extend(decode_all(&mut dec));
        assert_eq!(got, expect, "split at byte {i} changed the decode");
        assert_eq!(dec.finish(), Ok(()), "split at byte {i} left residue");
        assert_eq!(dec.buffered(), 0);
    }
}

/// The pathological chunking: the entire corpus one byte at a time.
#[test]
fn one_byte_reads_reassemble_identically() {
    let (wire, expect) = corpus_wire(0x1b17e);
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    for b in &wire {
        dec.push(std::slice::from_ref(b));
        got.extend(decode_all(&mut dec));
    }
    assert_eq!(got, expect);
    assert_eq!(dec.finish(), Ok(()));
}

/// Seeded random chunking: arbitrary read sizes (0 to 64 bytes, so empty
/// reads are covered too) over a fresh random corpus per case.
#[test]
fn random_chunkings_reassemble_identically() {
    Check::new("random_chunkings_reassemble_identically").run(
        |g| {
            let frames = encoded_corpus(g);
            let cuts = g.vec(0..200, |g| g.gen_range(0usize..64));
            (frames, cuts)
        },
        |(frames, cuts)| {
            let mut wire = Vec::new();
            for f in frames {
                write_frame(&mut wire, f);
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let mut pos = 0usize;
            let mut cut = cuts.iter().cycle();
            while pos < wire.len() {
                let take = (*cut.next().expect("cycle")).min(wire.len() - pos);
                dec.push(&wire[pos..pos + take]);
                pos += take;
                got.extend(decode_all(&mut dec));
                if take == 0 {
                    // A zero-length read (spurious wakeup) must not consume
                    // the iterator forever: push one byte to guarantee
                    // progress.
                    dec.push(&wire[pos..pos + 1]);
                    pos += 1;
                    got.extend(decode_all(&mut dec));
                }
            }
            assert_eq!(&got, frames);
            assert_eq!(dec.finish(), Ok(()));
        },
    );
}

/// Disconnect inside the 4-byte length prefix: `finish` reports exactly how
/// many prefix bytes arrived, for every torn prefix width.
#[test]
fn truncated_length_prefix_is_typed_error() {
    let (wire, expect) = corpus_wire(0x9e9a7);
    for got_prefix in 0..FRAME_HEADER_LEN {
        let mut dec = FrameDecoder::new();
        // Whole corpus, then a final frame torn off inside its prefix.
        dec.push(&wire);
        dec.push(&(8u32.to_le_bytes())[..got_prefix]);
        assert_eq!(decode_all(&mut dec), expect);
        if got_prefix == 0 {
            assert_eq!(dec.finish(), Ok(()));
        } else {
            assert_eq!(dec.finish(), Err(FrameError::TruncatedPrefix { got: got_prefix }));
        }
    }
}

/// A hostile declared length (above the cap, up to `u32::MAX`) is a typed
/// `Oversized` rejection — no allocation, no panic — at every chunking of
/// the poisoned prefix, and the error is sticky.
#[test]
fn oversized_declared_length_is_rejected_without_panic() {
    for declared in [MAX_FRAME_LEN + 1, 1 << 30, u32::MAX] {
        let prefix = declared.to_le_bytes();
        for split in 0..=prefix.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&prefix[..split]);
            if split < prefix.len() {
                assert!(dec
                    .next_frame()
                    .expect("incomplete prefix is not an error")
                    .is_none());
            }
            dec.push(&prefix[split..]);
            match dec.next_frame() {
                Err(FrameError::Oversized { declared: d, max }) => {
                    assert_eq!(d, declared);
                    assert_eq!(max, MAX_FRAME_LEN);
                }
                other => panic!("declared={declared} split={split}: got {other:?}"),
            }
            // Permanent: the stream stays unframeable.
            assert!(matches!(dec.next_frame(), Err(FrameError::Oversized { .. })));
        }
    }
}

/// Mid-frame disconnect: tear the stream at every byte inside the final
/// frame's payload and CRC trailer; `finish` must report the exact
/// shortfall (capped at the declared length once only trailer bytes are
/// missing).
#[test]
fn mid_frame_disconnect_is_typed_error() {
    let (wire, expect) = corpus_wire(0xd15c);
    let last = expect.last().expect("non-empty corpus");
    let last_total = FRAME_HEADER_LEN + last.len() + FRAME_TRAILER_LEN;
    let body_start = wire.len() - last.len() - FRAME_TRAILER_LEN;
    for cut in body_start..wire.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut]);
        let got = decode_all(&mut dec);
        assert_eq!(got, expect[..expect.len() - 1], "cut at {cut}");
        assert_eq!(
            dec.finish(),
            Err(FrameError::TruncatedFrame {
                declared: last.len() as u32,
                got: (cut - (wire.len() - last_total) - FRAME_HEADER_LEN).min(last.len()),
            }),
            "cut at {cut}"
        );
    }
}

/// Wire-level corruption detection: flip one byte inside any frame's
/// payload or trailer region of the corpus stream and the decoder must
/// stop with a typed [`FrameError::BadChecksum`] at that frame — earlier
/// frames still decode, and nothing ever panics or yields garbage bytes
/// as a "successful" frame.
#[test]
fn corrupted_byte_anywhere_is_a_typed_bad_checksum() {
    let (wire, expect) = corpus_wire(0xcc32);
    // Walk the stream frame by frame, corrupting one payload byte and one
    // trailer byte of each frame in turn.
    let mut frame_start = 0usize;
    for (idx, frame) in expect.iter().enumerate() {
        let body = frame_start + FRAME_HEADER_LEN;
        let trailer = body + frame.len();
        let offsets = if frame.is_empty() {
            vec![trailer, trailer + FRAME_TRAILER_LEN - 1]
        } else {
            vec![body, body + frame.len() / 2, trailer, trailer + FRAME_TRAILER_LEN - 1]
        };
        for off in offsets {
            let mut corrupt = wire.clone();
            corrupt[off] ^= 0x80;
            let mut dec = FrameDecoder::new();
            dec.push(&corrupt);
            let mut got = Vec::new();
            let err = loop {
                match dec.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => panic!("frame {idx} offset {off}: corruption undetected"),
                    Err(e) => break e,
                }
            };
            assert!(
                matches!(err, FrameError::BadChecksum { .. }),
                "frame {idx} offset {off}: expected BadChecksum, got {err:?}"
            );
            assert_eq!(got, expect[..idx], "frame {idx}: earlier frames must survive");
        }
        frame_start += FRAME_HEADER_LEN + frame.len() + FRAME_TRAILER_LEN;
    }
}
