//! Deterministic simulation testing: the explorer must catch a planted
//! fault and shrink it to a small deterministic tape, and every checked-in
//! regression tape must replay green.

use adaptive_token_passing::core::{EventSource, RingNode, TokenEvent, Want};
use adaptive_token_passing::net::{MsgClass, NodeId, SimTime, World, WorldConfig};
use adaptive_token_passing::sim::dst::{
    gen_case, replay_tape, run_case, verify_tape, DstCase, ExploreOutcome, Explorer, Focus,
    Mutation, StrategySpec, TapeFile,
};
use adaptive_token_passing::sim::Protocol;
use adaptive_token_passing::util::check::{shrink_tape, Gen};

/// The headline acceptance check: plant the off-by-one duplicate skip in
/// BinaryNode's order state and require the explorer to (a) find it within
/// the default budget, (b) shrink it to a small tape, and (c) produce a
/// tape that deterministically reproduces the violation.
#[test]
fn planted_mutation_is_found_and_shrunk_to_replayable_tape() {
    let explorer = Explorer::new(Protocol::Binary, 0, Mutation::BadPrefixSkip);
    let cx = match explorer.explore(300) {
        ExploreOutcome::Found(cx) => cx,
        ExploreOutcome::Clean { cases, .. } => {
            panic!("planted bad_prefix_skip not detected in {cases} cases")
        }
    };
    assert!(
        cx.tape.len() <= 32,
        "shrinker left a bloated tape ({} words)",
        cx.tape.len()
    );

    // The minimized tape must reproduce the violation, byte-for-byte
    // deterministically, and only under the mutation.
    let v1 = replay_tape(&cx.tape, Protocol::Binary, Mutation::BadPrefixSkip)
        .expect_err("minimized tape must still fail under the mutation");
    let v2 = replay_tape(&cx.tape, Protocol::Binary, Mutation::BadPrefixSkip)
        .expect_err("replay must be deterministic");
    assert_eq!(v1.to_string(), v2.to_string());
    assert_eq!(v1.to_string(), cx.violation.to_string());
    replay_tape(&cx.tape, Protocol::Binary, Mutation::None)
        .expect("the unmodified protocol must pass the minimized schedule");
}

/// Every tape under `tests/tapes/` replays green: benign tapes pass, and
/// mutation tapes still reproduce their violation (no tape rot).
#[test]
fn checked_in_tapes_replay_green() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/tapes");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/tapes must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tape"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "expected the checked-in regression tapes, found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let tf = TapeFile::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        verify_tape(&tf).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// A small clean sweep per protocol: all per-step oracles hold across
/// adversarial strategies. (ci.sh runs the full-budget campaign.)
#[test]
fn oracles_hold_over_adversarial_schedules() {
    for protocol in Protocol::ALL {
        match Explorer::new(protocol, 7, Mutation::None).explore(40) {
            ExploreOutcome::Clean { cases, .. } => assert_eq!(cases, 40),
            ExploreOutcome::Found(cx) => panic!(
                "{} violated an oracle: {}\n{}",
                protocol.label(),
                cx.violation,
                cx.case_debug
            ),
        }
    }
}

/// The partition adversary alone: every explored case splits the ring and
/// heals it, and the dual-token-after-heal oracle holds alongside the
/// usual ones. (ci.sh runs the full-budget campaign.)
#[test]
fn partition_adversary_oracles_hold() {
    for protocol in Protocol::ALL {
        let explorer =
            Explorer::new(protocol, 13, Mutation::None).with_focus(Focus::Partition);
        match explorer.explore(15) {
            ExploreOutcome::Clean { cases, .. } => assert_eq!(cases, 15),
            ExploreOutcome::Found(cx) => panic!(
                "{} violated an oracle under partition focus: {}\n{}",
                protocol.label(),
                cx.violation,
                cx.case_debug
            ),
        }
    }
}

/// The checked-in `ring_partition_retransmit` tape pins the tentpole
/// recovery path: a token frame severed mid-partition is recovered by the
/// ack/retransmit machinery once the ring heals — regeneration never
/// fires, and every request is still served.
#[test]
fn severed_token_recovered_by_retransmit_not_regeneration() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/tapes/ring_partition_retransmit.tape"
    ))
    .expect("pinned tape must exist");
    let tf = TapeFile::from_json(&text).expect("pinned tape must parse");
    assert_eq!(tf.protocol, Protocol::Ring);
    assert_eq!(tf.mutation, Mutation::None);
    verify_tape(&tf).expect("pinned tape must replay green under the DST oracles");

    // Rebuild the exact case and re-run it with the event inspection the
    // DST runner does not expose. The tape was selected to need no
    // adversarial extras, so a default world reproduces it faithfully.
    let mut g = Gen::from_tape(tf.tape.clone());
    let case = gen_case(&mut g, Protocol::Ring, Mutation::None);
    let (at, heal_at, split) = case.partition.expect("tape must carry a partition");
    assert_eq!(case.strategy, StrategySpec::Fifo);
    assert_eq!(case.latency, (1, 1));
    assert_eq!(case.drop_p, 0.0);
    assert_eq!(case.link_loss_p, 0.0);
    assert_eq!(case.link_dup_p, 0.0);
    assert!(case.crash.is_none());

    let mut world: World<RingNode> = World::from_nodes(
        (0..case.n).map(|_| RingNode::new(case.cfg)).collect(),
        WorldConfig::default().seed(case.world_seed),
    );
    for &(t, node, payload) in &case.requests {
        world.schedule_external(SimTime::from_ticks(t), NodeId::new(node), Want::new(payload));
    }
    let left: Vec<NodeId> = (0..split).map(NodeId::new).collect();
    let right: Vec<NodeId> = (split..case.n as u32).map(NodeId::new).collect();
    world.schedule_partition(
        SimTime::from_ticks(at),
        SimTime::from_ticks(heal_at),
        &[left, right],
    );
    world.run_until(SimTime::from_ticks(case.horizon()));

    assert!(
        world.stats().severed(MsgClass::Token) > 0,
        "the partition never cut a token frame"
    );
    let mut retransmits = 0u64;
    let mut requested = 0u64;
    let mut granted = 0u64;
    for i in 0..case.n {
        let id = NodeId::new(i as u32);
        retransmits += world.node(id).token_retransmits();
        for ev in world.node_mut(id).take_events() {
            match ev {
                TokenEvent::Regenerated { .. } => {
                    panic!("recovery went through regeneration, not retransmit")
                }
                TokenEvent::Requested { .. } => requested += 1,
                TokenEvent::Granted { .. } => granted += 1,
                _ => {}
            }
        }
    }
    assert!(retransmits > 0, "no retransmit ever fired");
    assert!(requested > 0, "pinned schedule carries no requests");
    assert_eq!(granted, requested, "requests lost with the severed frame");
}

/// What makes a drawn Naimi case worth pinning as a path-reversal
/// regression: a split/heal window, requesters on both sides of the cut
/// (so forwarding chains cross severed links), and enough distinct origins
/// that `last` pointers actually migrate. `need_dup` additionally demands
/// full-strength frame duplication across the heal.
fn qualifies_as_naimi_reversal(case: &DstCase, need_dup: bool) -> bool {
    let Some((_, _, split)) = case.partition else {
        return false;
    };
    if case.protocol != Protocol::Naimi || case.crash.is_some() || case.drop_p != 0.0 {
        return false;
    }
    if need_dup {
        if case.link_dup_p < 1.0 || case.link_loss_p != 0.0 {
            return false;
        }
    } else if case.link_dup_p != 0.0 || case.link_loss_p != 0.0 {
        return false;
    }
    let mut origins: Vec<u32> = case.requests.iter().map(|&(_, o, _)| o).collect();
    origins.sort_unstable();
    origins.dedup();
    origins.len() >= 3
        && origins.iter().any(|&o| o < split)
        && origins.iter().any(|&o| o >= split)
}

/// Regenerates the two pinned Naimi split/heal tapes. Ignored by default —
/// run with `--ignored` only when the draw grammar in `gen_case` changes
/// and the checked-in tapes stop rebuilding the intended cases.
///
/// The search scans the seed stream for a qualifying green case, then
/// shrinks its tape with the *qualification itself* as the predicate: the
/// minimized tape is the smallest schedule that is still a green Naimi
/// split/heal run with cross-partition path reversal.
#[test]
#[ignore = "writes tests/tapes/; run manually after a gen_case grammar change"]
fn regenerate_naimi_partition_tapes() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/tapes");
    for (file, need_dup, note) in [
        (
            "naimi_partition_reversal.tape",
            false,
            "green split/heal schedule: requests on both sides of the cut drive \
             path reversal across severed links; retransmit + fencing recover",
        ),
        (
            "naimi_partition_dup.tape",
            true,
            "green split/heal schedule with every frame duplicated: watermarks \
             must absorb the copies while reversal spans the partition",
        ),
    ] {
        let mut found = None;
        for seed in 0..50_000u64 {
            let mut g = Gen::from_seed(seed);
            let case = gen_case(&mut g, Protocol::Naimi, Mutation::None);
            if qualifies_as_naimi_reversal(&case, need_dup) && run_case(&case).is_ok() {
                found = Some(g.tape().to_vec());
                break;
            }
        }
        let tape = found.expect("no qualifying green Naimi case in the seed stream");
        let (tape, _) = shrink_tape(tape, 4_000, |cand| {
            let mut g = Gen::from_tape(cand.to_vec());
            let case = gen_case(&mut g, Protocol::Naimi, Mutation::None);
            (qualifies_as_naimi_reversal(&case, need_dup) && run_case(&case).is_ok())
                .then(|| g.tape().to_vec())
        });
        let tf = TapeFile {
            name: file.trim_end_matches(".tape").to_string(),
            protocol: Protocol::Naimi,
            mutation: Mutation::None,
            note: note.to_string(),
            tape,
        };
        std::fs::write(format!("{dir}/{file}"), tf.to_json() + "\n").unwrap();
    }
}

/// The pinned Naimi tapes rebuild the intended cases — a split/heal window
/// with cross-partition requesters, one clean and one under full frame
/// duplication — and replay green, twice, with identical counters.
#[test]
fn naimi_tapes_pin_split_heal_reversal() {
    for (file, need_dup) in [
        ("naimi_partition_reversal.tape", false),
        ("naimi_partition_dup.tape", true),
    ] {
        let path = format!(
            "{}/tests/tapes/{file}",
            env!("CARGO_MANIFEST_DIR")
        );
        let text = std::fs::read_to_string(&path).expect("pinned naimi tape must exist");
        let tf = TapeFile::from_json(&text).expect("pinned naimi tape must parse");
        assert_eq!(tf.protocol, Protocol::Naimi);
        assert_eq!(tf.mutation, Mutation::None);

        let mut g = Gen::from_tape(tf.tape.clone());
        let case = gen_case(&mut g, Protocol::Naimi, Mutation::None);
        assert!(
            qualifies_as_naimi_reversal(&case, need_dup),
            "{file}: tape no longer rebuilds a qualifying split/heal case \
             (gen_case grammar drift?): {case:#?}"
        );

        let a = run_case(&case).unwrap_or_else(|v| panic!("{file}: replay failed: {v}"));
        let b = run_case(&case).unwrap_or_else(|v| panic!("{file}: second replay failed: {v}"));
        assert_eq!(a.events, b.events, "{file}: replay is not deterministic");
        assert_eq!(a.grants, b.grants, "{file}: replay is not deterministic");
        assert!(a.grants > 0, "{file}: pinned schedule granted nothing");
    }
}
