//! Deterministic simulation testing: the explorer must catch a planted
//! fault and shrink it to a small deterministic tape, and every checked-in
//! regression tape must replay green.

use adaptive_token_passing::sim::dst::{
    replay_tape, verify_tape, ExploreOutcome, Explorer, Mutation, TapeFile,
};
use adaptive_token_passing::sim::Protocol;

/// The headline acceptance check: plant the off-by-one duplicate skip in
/// BinaryNode's order state and require the explorer to (a) find it within
/// the default budget, (b) shrink it to a small tape, and (c) produce a
/// tape that deterministically reproduces the violation.
#[test]
fn planted_mutation_is_found_and_shrunk_to_replayable_tape() {
    let explorer = Explorer::new(Protocol::Binary, 0, Mutation::BadPrefixSkip);
    let cx = match explorer.explore(300) {
        ExploreOutcome::Found(cx) => cx,
        ExploreOutcome::Clean { cases, .. } => {
            panic!("planted bad_prefix_skip not detected in {cases} cases")
        }
    };
    assert!(
        cx.tape.len() <= 32,
        "shrinker left a bloated tape ({} words)",
        cx.tape.len()
    );

    // The minimized tape must reproduce the violation, byte-for-byte
    // deterministically, and only under the mutation.
    let v1 = replay_tape(&cx.tape, Protocol::Binary, Mutation::BadPrefixSkip)
        .expect_err("minimized tape must still fail under the mutation");
    let v2 = replay_tape(&cx.tape, Protocol::Binary, Mutation::BadPrefixSkip)
        .expect_err("replay must be deterministic");
    assert_eq!(v1.to_string(), v2.to_string());
    assert_eq!(v1.to_string(), cx.violation.to_string());
    replay_tape(&cx.tape, Protocol::Binary, Mutation::None)
        .expect("the unmodified protocol must pass the minimized schedule");
}

/// Every tape under `tests/tapes/` replays green: benign tapes pass, and
/// mutation tapes still reproduce their violation (no tape rot).
#[test]
fn checked_in_tapes_replay_green() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/tapes");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/tapes must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "tape"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "expected the checked-in regression tapes, found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let tf = TapeFile::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        verify_tape(&tf).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// A small clean sweep per protocol: all per-step oracles hold across
/// adversarial strategies. (ci.sh runs the full-budget campaign.)
#[test]
fn oracles_hold_over_adversarial_schedules() {
    for protocol in Protocol::ALL {
        match Explorer::new(protocol, 7, Mutation::None).explore(40) {
            ExploreOutcome::Clean { cases, .. } => assert_eq!(cases, 40),
            ExploreOutcome::Found(cx) => panic!(
                "{} violated an oracle: {}\n{}",
                protocol.label(),
                cx.violation,
                cx.case_debug
            ),
        }
    }
}
