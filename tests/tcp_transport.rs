//! The conformance driver of `tests/harness_transport.rs`, now over real
//! loopback TCP sockets: length-prefixed frames, one accept thread plus
//! one reader thread per connection, reconnect-with-backoff — and still
//! grant-for-grant identical to the deterministic `World`, because the
//! driver assigns every frame's virtual arrival before the bytes leave.
//!
//! Three layers of assurance:
//! * a seed × protocol matrix (all four families, two seeds) must match
//!   `World` exactly and tear down without leaking a thread;
//! * severing every socket mid-run must not lose a single request — the
//!   ack/retransmit machinery re-drives the handoff over fresh
//!   connections;
//! * shutdown is idempotent and accounts for every spawned thread.

use adaptive_token_passing::net::{Endpoint, NodeId, TcpEndpoint, TcpTransport, Transport};
use adaptive_token_passing::sim::cluster::{
    run_in_world, run_on_endpoints, run_on_transport, ClusterScript, DriverOptions,
};
use adaptive_token_passing::sim::runner::ProtocolNode;
use atp_core::{BinaryNode, NaimiNode, RingNode, SearchNode};
use std::time::Duration;

fn check_tcp_matches_world<P: ProtocolNode>(seed: u64) {
    let script = ClusterScript::reference(seed);
    let world = run_in_world::<P>(&script);
    assert_eq!(
        world.grants.len(),
        script.requests.len(),
        "world must grant every request within the horizon"
    );
    let (tcp, stats) = run_on_transport::<P, TcpTransport>(&script).expect("loopback bind");
    assert_eq!(
        world, tcp,
        "behavior diverged between World and loopback TCP"
    );
    assert!(stats.is_clean(), "transport not clean: {stats:?}");
}

/// The full matrix: every protocol family, two seeds, real sockets, and
/// the outcome must be byte-for-byte what the deterministic engine says.
#[test]
fn tcp_loopback_matches_world_for_every_protocol() {
    for seed in [7, 1003] {
        check_tcp_matches_world::<RingNode>(seed);
        check_tcp_matches_world::<SearchNode>(seed);
        check_tcp_matches_world::<BinaryNode>(seed);
        check_tcp_matches_world::<NaimiNode>(seed);
    }
}

/// Sever every TCP connection mid-run. Frames on the wire at that instant
/// are gone; the driver declares them lost after the grace period and the
/// protocol's ack/retransmit timers (already on the virtual clock) must
/// re-drive the token over freshly reconnected sockets. Every request
/// still gets granted exactly once, histories stay prefix-consistent, and
/// teardown still joins every thread.
#[test]
fn severed_sockets_recover_with_zero_unserved_requests() {
    let mut script = ClusterScript::reference(7);
    // Leave the retransmit machinery room to re-drive lost handoffs.
    script.horizon = 2_000;
    let endpoints = TcpTransport::endpoints(script.n).expect("loopback bind");
    let mut severed = false;
    let opts: DriverOptions<TcpEndpoint> = DriverOptions {
        dup_every_nth_token: None,
        loss_grace: Duration::from_millis(750),
        fault_hook: Some(Box::new(move |eps: &mut [TcpEndpoint], at: u64| {
            if !severed && at >= 25 {
                severed = true;
                for ep in eps.iter_mut() {
                    ep.kill_connections();
                }
            }
        })),
        ..DriverOptions::default()
    };
    let (run, stats) = run_on_endpoints::<BinaryNode, _>(&script, endpoints, opts);
    assert_eq!(
        run.grants.len(),
        script.requests.len(),
        "unserved requests after socket kill: {run:?} ({stats:?})"
    );
    // Exactly-once: origin/seq pairs are unique even though retransmits
    // re-sent token frames.
    let mut keys: Vec<_> = run.grants.iter().map(|&(_, o, s)| (o, s)).collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), script.requests.len(), "a request granted twice");
    // Histories agree wherever they are equally long.
    let max = run.histories.iter().map(|&(len, _)| len).max().unwrap();
    let frontier: Vec<_> = run.histories.iter().filter(|&&(l, _)| l == max).collect();
    assert!(frontier.windows(2).all(|w| w[0].1 == w[1].1));
    // Faults may lose frames (that is the point), but never leak threads.
    assert_eq!(stats.decode_errors, 0, "{stats:?}");
    for report in &stats.close_reports {
        assert!(report.is_clean(), "thread leak after faults: {report:?}");
    }
}

/// Close racing an in-flight reconnect backoff: node 0's endpoint is torn
/// down on another thread *while* node 1 is inside `try_flush`'s
/// connect-with-backoff loop toward it. The flush must fail with the typed
/// [`FlushError`] (never hang, never panic), the failed frames must land in
/// the `dropped_frames` counter, and both close reports must still account
/// for every spawned thread.
#[test]
fn close_racing_reconnect_backoff_keeps_thread_accounting_clean() {
    let mut eps = TcpTransport::endpoints(2).expect("loopback bind");
    let mut b = eps.pop().expect("endpoint 1");
    let mut a = eps.pop().expect("endpoint 0");

    // Prime the B→A link so a live writer connection exists before the race.
    b.stage(NodeId::new(0), b"prime");
    b.flush();
    assert!(
        a.recv_timeout(Duration::from_secs(2)).is_some(),
        "primed frame must arrive"
    );

    // Tear down A concurrently with B's flush attempts. B's writes first
    // hit the dying connection, then the reconnect loop finds the listener
    // gone and burns through its backoff schedule.
    let closer = std::thread::spawn(move || a.close());
    let mut flush_err = None;
    for round in 0..10_000u32 {
        b.stage(NodeId::new(0), &round.to_le_bytes());
        if let Err(e) = b.try_flush() {
            flush_err = Some(e);
            break;
        }
    }
    let report_a = closer.join().expect("closer thread must not panic");

    let err = flush_err.expect("flushing to a closed peer must eventually fail");
    assert!(err.dropped() >= 1, "{err:?}");
    assert!(
        err.failures.iter().any(|&(id, n)| id == NodeId::new(0) && n >= 1),
        "failure must name the unreachable peer: {err:?}"
    );
    assert!(
        b.dropped_frames() >= err.dropped(),
        "dropped_frames counter must cover the typed failure: {} < {}",
        b.dropped_frames(),
        err.dropped()
    );

    let report_b = b.close();
    assert!(report_a.is_clean(), "node 0 leaked threads: {report_a:?}");
    assert!(report_b.is_clean(), "node 1 leaked threads: {report_b:?}");
}

/// Clean shutdown accounting: a healthy run joins every spawned thread
/// within the close deadline, and closing again is a no-op that reports
/// the same numbers.
#[test]
fn tcp_shutdown_joins_every_thread() {
    let script = ClusterScript::reference(7);
    let (_, stats) =
        run_on_transport::<BinaryNode, TcpTransport>(&script).expect("loopback bind");
    assert_eq!(stats.close_reports.len(), script.n);
    for report in &stats.close_reports {
        assert!(report.is_clean(), "leaked threads: {report:?}");
        assert!(
            report.threads_spawned > 0,
            "a TCP endpoint that spawned no threads never accepted a connection"
        );
    }
}
