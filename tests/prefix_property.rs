//! Cross-crate integration: the executable protocols uphold the paper's
//! safety properties under randomized workloads, jittery latency, and lossy
//! cheap messages. Runs on the in-repo `atp_util::check` harness.

use adaptive_token_passing::core::{
    BinaryNode, EventSource, ProtocolConfig, RingNode, SearchNode, TokenEvent, Want,
};
use adaptive_token_passing::net::{
    LinkFaults, Node, NodeId, SimTime, StepOutcome, UniformLatency, World, WorldConfig,
};
use adaptive_token_passing::util::check::{Check, Gen};
use adaptive_token_passing::util::rng::Rng;

/// A plan of requests to throw at a ring.
#[derive(Debug, Clone)]
struct Plan {
    n: usize,
    requests: Vec<(u64, u32, u64)>, // (time, node, payload)
    seed: u64,
    jitter: bool,
    drop_p: f64,
}

fn plan(g: &mut Gen) -> Plan {
    let n = g.gen_range(2usize..10);
    let seed = g.gen_range(0..=u64::MAX);
    let jitter = g.gen_bool(0.5);
    let drop_p = match g.gen_range(0u8..3) {
        0 => 0.0,
        1 => 0.3,
        _ => 1.0,
    };
    let requests = g.vec(1..25, |g| {
        (
            g.gen_range(1u64..400),
            g.gen_range(0..n as u32),
            g.gen_range(0u64..1000),
        )
    });
    Plan {
        n,
        requests,
        seed,
        jitter,
        drop_p,
    }
}

/// The shrunk counterexample a previous proptest run checked in
/// (`.proptest-regressions`): a burst of identical requests at tick 1 with
/// two stragglers, under jitter. Replayed verbatim against every property.
fn regression_plan() -> Plan {
    let mut requests = vec![(1u64, 1u32, 0u64); 8];
    requests.push((87, 0, 279));
    requests.push((63, 1, 299));
    Plan {
        n: 3,
        requests,
        seed: 17181601655841544024,
        jitter: true,
        drop_p: 0.0,
    }
}

fn world_config(plan: &Plan) -> WorldConfig {
    let mut cfg = WorldConfig::default().seed(plan.seed);
    if plan.jitter {
        cfg = cfg.latency(UniformLatency::new(1, 3));
    }
    if plan.drop_p > 0.0 {
        cfg = cfg.link_faults(LinkFaults::control_drops(plan.drop_p));
    }
    cfg
}

/// Runs a plan against any protocol node type and checks the shared safety
/// properties; returns (grants, requests).
fn run_plan<N>(
    plan: &Plan,
    build: impl Fn() -> N,
    order: impl Fn(&N) -> &adaptive_token_passing::core::OrderState,
) -> (u64, u64)
where
    N: Node<Ext = Want> + EventSource,
{
    let mut world: World<N> =
        World::from_nodes((0..plan.n).map(|_| build()).collect(), world_config(plan));
    for (t, node, payload) in &plan.requests {
        world.schedule_external(
            SimTime::from_ticks(*t),
            NodeId::new(node % plan.n as u32),
            Want::new(*payload),
        );
    }
    // Long enough for every protocol to serve everything (rotation covers
    // the ring many times over). Stepped manually so the safety oracles run
    // after EVERY dispatched event, not just at the end: a transient
    // divergence that later heals would silently pass an end-state check.
    let horizon = SimTime::from_ticks(400 + 50 * plan.n as u64);
    loop {
        let at = match world.step() {
            StepOutcome::Quiescent => break,
            StepOutcome::Consumed { at } => at,
            StepOutcome::Dispatched { at, .. } => {
                assert_prefix_oracle(&world, plan.n, &order, at);
                at
            }
        };
        if at > horizon {
            break;
        }
    }

    let mut grants = 0u64;
    let mut requests = 0u64;
    let mut granted_now: Vec<(SimTime, SimTime)> = Vec::new(); // (grant, release)
    for i in 0..plan.n {
        for ev in world.node_mut(NodeId::new(i as u32)).take_events() {
            match ev {
                TokenEvent::Requested { .. } => requests += 1,
                TokenEvent::Granted { at, .. } => {
                    grants += 1;
                    granted_now.push((at, SimTime::MAX));
                }
                TokenEvent::Released { at, .. } => {
                    if let Some(open) = granted_now.iter_mut().rev().find(|g| g.1 == SimTime::MAX)
                    {
                        open.1 = at;
                    }
                }
                _ => {}
            }
        }
    }

    // Final pass over the settled end state.
    assert_prefix_oracle(&world, plan.n, &order, world.now());
    (grants, requests)
}

/// The per-step safety oracle: pairwise prefix property and no delivery
/// gaps (this file runs crash-free plans only).
fn assert_prefix_oracle<N>(
    world: &World<N>,
    n: usize,
    order: impl Fn(&N) -> &adaptive_token_passing::core::OrderState,
    at: SimTime,
) where
    N: Node<Ext = Want> + EventSource,
{
    for a in 0..n {
        let oa = order(world.node(NodeId::new(a as u32)));
        assert_eq!(oa.gap_events(), 0, "n{a} saw a gap without crashes at {at}");
        for b in a + 1..n {
            let ob = order(world.node(NodeId::new(b as u32)));
            assert!(
                oa.is_prefix_of(ob) || ob.is_prefix_of(oa),
                "prefix property violated between n{a} and n{b} at {at}"
            );
        }
    }
}

fn binary_body(plan: &Plan) {
    let cfg = ProtocolConfig::default();
    let (grants, requests) = run_plan(plan, || BinaryNode::new(cfg), |n| n.order());
    assert_eq!(grants, requests, "every request granted exactly once");
}

fn ring_body(plan: &Plan) {
    let cfg = ProtocolConfig::default();
    let (grants, requests) = run_plan(plan, || RingNode::new(cfg), |n| n.order());
    assert_eq!(grants, requests);
}

fn search_body(plan: &Plan) {
    // The lazy-search protocol *depends* on gimmes for liveness, so only
    // assert full service when nothing is dropped; safety must hold
    // regardless.
    let cfg = ProtocolConfig::default();
    let (grants, requests) = run_plan(plan, || SearchNode::new(cfg), |n| n.order());
    if plan.drop_p == 0.0 {
        assert_eq!(grants, requests);
    } else {
        assert!(grants <= requests);
    }
}

fn binary_all_optimizations_body(plan: &Plan) {
    let cfg = ProtocolConfig::default()
        .with_single_outstanding(true)
        .with_adaptive_speed(true)
        .with_serve_all_on_grant(true)
        .with_probe_on_idle(true);
    let (grants, requests) = run_plan(plan, || BinaryNode::new(cfg), |n| n.order());
    assert_eq!(grants, requests);
}

#[test]
fn binary_serves_everything_safely() {
    Check::new("binary_serves_everything_safely")
        .cases(48)
        .run(plan, binary_body);
}

#[test]
fn ring_serves_everything_safely() {
    Check::new("ring_serves_everything_safely")
        .cases(48)
        .run(plan, ring_body);
}

#[test]
fn search_is_safe_and_live_when_control_plane_works() {
    Check::new("search_is_safe_and_live_when_control_plane_works")
        .cases(48)
        .run(plan, search_body);
}

#[test]
fn binary_with_all_optimizations_is_still_safe() {
    Check::new("binary_with_all_optimizations_is_still_safe")
        .cases(48)
        .run(plan, binary_all_optimizations_body);
}

/// Replays the checked-in shrunk counterexample through every property body.
#[test]
fn shrunk_burst_plan_regression() {
    let plan = regression_plan();
    binary_body(&plan);
    ring_body(&plan);
    search_body(&plan);
    binary_all_optimizations_body(&plan);
}

#[test]
fn deterministic_across_identical_runs() {
    let plan = Plan {
        n: 7,
        requests: vec![(3, 1, 10), (9, 4, 20), (9, 6, 30), (40, 2, 40)],
        seed: 123,
        jitter: true,
        drop_p: 0.3,
    };
    let run = || {
        let cfg = ProtocolConfig::default();
        let mut world: World<BinaryNode> = World::from_nodes(
            (0..plan.n).map(|_| BinaryNode::new(cfg)).collect(),
            world_config(&plan),
        );
        for (t, node, payload) in &plan.requests {
            world.schedule_external(SimTime::from_ticks(*t), NodeId::new(*node), Want::new(*payload));
        }
        world.run_until(SimTime::from_ticks(600));
        let mut all = Vec::new();
        for i in 0..plan.n {
            all.extend(world.node_mut(NodeId::new(i as u32)).take_events());
        }
        all.sort_by_key(|e| e.at());
        format!("{all:?}")
    };
    assert_eq!(run(), run());
}
