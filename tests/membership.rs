//! Dynamic membership (Section 5's future-work extension): graceful leave
//! and rejoin, across all three protocols.

use adaptive_token_passing::core::{
    BinaryNode, EventSource, ProtocolConfig, RingNode, SearchNode, TokenEvent, Want,
};
use adaptive_token_passing::net::{Node, NodeId, SimTime, World, WorldConfig};

fn world<N: Node<Ext = Want> + EventSource>(
    n: usize,
    build: impl Fn() -> N,
) -> World<N> {
    World::from_nodes((0..n).map(|_| build()).collect(), WorldConfig::default())
}

fn grants_of<N>(w: &World<N>, grants: impl Fn(&N) -> u64) -> Vec<u64>
where
    N: Node<Ext = Want> + EventSource,
{
    (0..w.len())
        .map(|i| grants(w.node(NodeId::new(i as u32))))
        .collect()
}

#[test]
fn ring_leaver_is_skipped_without_token_loss() {
    let cfg = ProtocolConfig::default();
    let mut w = world(6, || RingNode::new(cfg));
    // Node 3 leaves at t=5; node 4 requests periodically afterwards.
    w.schedule_external(SimTime::from_ticks(5), NodeId::new(3), Want::leave());
    for k in 0..10 {
        w.schedule_external(SimTime::from_ticks(20 + k * 10), NodeId::new(4), Want::new(k));
    }
    w.run_until(SimTime::from_ticks(300));
    assert!(w.node(NodeId::new(3)).is_departed());
    assert_eq!(w.node(NodeId::new(4)).grants(), 10, "service continues");
    // No regeneration should have been needed: graceful leave keeps the
    // token alive.
    let mut regens = 0;
    for i in 0..6 {
        for ev in w.node_mut(NodeId::new(i)).take_events() {
            if matches!(ev, TokenEvent::Regenerated { .. }) {
                regens += 1;
            }
        }
    }
    assert_eq!(regens, 0);
    // The departed node stops being visited; the others keep rotating.
    let stamp3_before = w.node(NodeId::new(3)).last_visit().value();
    w.run_for(50);
    assert_eq!(
        w.node(NodeId::new(3)).last_visit().value(),
        stamp3_before,
        "departed node must not be visited"
    );
}

#[test]
fn binary_leaver_while_holding_hands_the_token_on() {
    let cfg = ProtocolConfig::default().with_service_ticks(4);
    let mut w = world(6, || BinaryNode::new(cfg));
    // Node 2 acquires, and *while serving* we queue its leave right after.
    w.schedule_external(SimTime::ZERO, NodeId::new(2), Want::new(1));
    w.run_until(SimTime::from_ticks(4));
    assert!(w.node(NodeId::new(2)).holds_token());
    let t = w.now();
    w.schedule_external(t + 10, NodeId::new(2), Want::leave());
    w.schedule_external(t + 20, NodeId::new(5), Want::new(2));
    w.run_until(SimTime::from_ticks(300));
    assert_eq!(w.node(NodeId::new(5)).grants(), 1);
    assert!(w.node(NodeId::new(2)).is_departed());
}

#[test]
fn rejoin_restores_service_to_the_node() {
    let cfg = ProtocolConfig::default();
    let mut w = world(5, || BinaryNode::new(cfg));
    w.schedule_external(SimTime::from_ticks(2), NodeId::new(1), Want::leave());
    // While departed, its Acquire stimuli are ignored.
    w.schedule_external(SimTime::from_ticks(20), NodeId::new(1), Want::new(7));
    w.run_until(SimTime::from_ticks(120));
    assert_eq!(w.node(NodeId::new(1)).grants(), 0);
    // Rejoin, then request again.
    let t = w.now();
    w.schedule_external(t, NodeId::new(1), Want::rejoin());
    w.schedule_external(t + 20, NodeId::new(1), Want::new(8));
    w.run_until(SimTime::from_ticks(400));
    assert!(!w.node(NodeId::new(1)).is_departed());
    assert_eq!(w.node(NodeId::new(1)).grants(), 1);
    // And the rotation visits it again.
    let before = w.node(NodeId::new(1)).last_visit().value();
    w.run_for(30);
    assert!(w.node(NodeId::new(1)).last_visit().value() > before);
}

#[test]
fn search_leaving_holder_hands_off_lazily() {
    let cfg = ProtocolConfig::default();
    let mut w = world(5, || SearchNode::new(cfg));
    // Token starts (lazily) at node 0; node 0 leaves.
    w.schedule_external(SimTime::from_ticks(3), NodeId::new(0), Want::leave());
    w.run_until(SimTime::from_ticks(20));
    assert!(
        !w.node(NodeId::new(0)).holds_token(),
        "departing holder must hand the token off"
    );
    // Someone else can still acquire it.
    let t = w.now();
    w.schedule_external(t, NodeId::new(3), Want::new(5));
    w.run_until(SimTime::from_ticks(200));
    assert_eq!(w.node(NodeId::new(3)).grants(), 1);
}

#[test]
fn half_the_ring_can_leave_and_the_rest_keeps_working() {
    let cfg = ProtocolConfig::default();
    let mut w = world(8, || BinaryNode::new(cfg));
    for i in [1u32, 3, 5, 7] {
        w.schedule_external(SimTime::from_ticks(2 + i as u64), NodeId::new(i), Want::leave());
    }
    for k in 0..12u64 {
        let node = [0u32, 2, 4, 6][(k % 4) as usize];
        w.schedule_external(SimTime::from_ticks(40 + k * 7), NodeId::new(node), Want::new(k));
    }
    w.run_until(SimTime::from_ticks(600));
    let grants = grants_of(&w, |n: &BinaryNode| n.grants());
    assert_eq!(grants.iter().sum::<u64>(), 12);
    for i in [1usize, 3, 5, 7] {
        assert_eq!(grants[i], 0, "departed node {i} must not be granted");
    }
    // Survivors' histories still agree.
    for a in [0u32, 2, 4, 6] {
        for b in [0u32, 2, 4, 6] {
            let oa = w.node(NodeId::new(a)).order();
            let ob = w.node(NodeId::new(b)).order();
            assert!(oa.is_prefix_of(ob) || ob.is_prefix_of(oa));
        }
    }
}
