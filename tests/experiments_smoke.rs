//! Smoke test: every experiment in `atp_sim::experiments` runs its `quick`
//! preset in-process and produces sane output — non-empty, free of NaN or
//! infinity, with monotone time statistics.

use adaptive_token_passing::sim::experiments::{
    ablation, drops, failure, fairness, fig10, fig9, geo, latency, messages, throughput,
    worstcase,
};
use adaptive_token_passing::sim::runner::{run_experiment, ExperimentSpec, Protocol};
use adaptive_token_passing::sim::workload::GlobalPoisson;

fn assert_sane(name: &str, rendered: &str) {
    assert!(!rendered.trim().is_empty(), "{name}: empty output");
    assert!(!rendered.contains("NaN"), "{name}: NaN in output:\n{rendered}");
    assert!(!rendered.contains("inf"), "{name}: inf in output:\n{rendered}");
}

macro_rules! smoke {
    ($($test:ident => $module:ident),* $(,)?) => {$(
        #[test]
        fn $test() {
            let rendered = $module::run(&$module::Config::quick()).render();
            assert_sane(stringify!($module), &rendered);
        }
    )*};
}

smoke! {
    fig9_quick_preset_is_sane => fig9,
    fig10_quick_preset_is_sane => fig10,
    messages_quick_preset_is_sane => messages,
    worstcase_quick_preset_is_sane => worstcase,
    fairness_quick_preset_is_sane => fairness,
    ablation_quick_preset_is_sane => ablation,
    failure_quick_preset_is_sane => failure,
    drops_quick_preset_is_sane => drops,
    throughput_quick_preset_is_sane => throughput,
    latency_quick_preset_is_sane => latency,
    geo_quick_preset_is_sane => geo,
}

/// The quantiles of every timing statistic are monotone and the scalar
/// metrics finite — the "monotonically-timed" half of the smoke check,
/// asserted on a direct quick-scale run of each protocol.
#[test]
fn quick_run_statistics_are_finite_and_monotone() {
    for protocol in Protocol::ALL {
        let spec = ExperimentSpec::new(protocol, 16, 2_000).with_seed(5);
        let mut wl = GlobalPoisson::new(10.0);
        let s = run_experiment(&spec, &mut wl);
        assert!(s.duration_ticks > 0);
        assert!(s.net.events > 0, "{}: no events dispatched", protocol.label());
        for (label, st) in [
            ("responsiveness", &s.metrics.responsiveness),
            ("waiting", &s.metrics.waiting),
        ] {
            assert!(st.count > 0, "{}: no {label} samples", protocol.label());
            assert!(st.mean.is_finite());
            assert!(
                st.min <= st.p50 && st.p50 <= st.p95 && st.p95 <= st.p99 && st.p99 <= st.max,
                "{}: {label} quantiles not monotone: {st:?}",
                protocol.label()
            );
        }
        assert!(s.metrics.jain.is_finite() && (0.0..=1.0).contains(&s.metrics.jain));
    }
}
