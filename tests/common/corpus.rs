//! The tag-driven fuzz corpus, shared between the codec property tests
//! (`tests/codec_roundtrip.rs`) and the streaming-framer torn-read tests
//! (`tests/framing.rs`).
//!
//! The corpus is anchored to the codec's own exhaustive tag lists
//! (`known_*_tags()`): for every listed tag of every framing there is
//! exactly one generator arm, and `codec_roundtrip`'s
//! `corpus_covers_every_known_tag` proves each arm emits its tag. A message
//! type added to the codec without a generator arm panics the corpus
//! immediately — new frames cannot dodge roundtrip, mutation, truncation,
//! or torn-read coverage.
#![allow(dead_code)] // Each including test crate uses a different subset.

use adaptive_token_passing::core::{
    encode_binary_msg, encode_naimi_msg, encode_ring_msg, encode_search_msg, known_binary_tags,
    known_naimi_tags, known_ring_tags, known_search_tags, BinaryMsg, Gimme, LogEntry, NaimiMsg,
    RegenMsg, RegenReply, RequestId, RingMsg, SearchMsg, TokenFrame, TokenMode, VisitStamp,
};
use adaptive_token_passing::net::NodeId;
use adaptive_token_passing::util::check::Gen;
use adaptive_token_passing::util::rng::Rng;

pub fn arb_node(g: &mut Gen) -> NodeId {
    NodeId::new(g.gen_range(0u32..1024))
}

pub fn arb_req(g: &mut Gen) -> RequestId {
    let n = arb_node(g);
    RequestId::new(n, g.gen_range(0..u64::MAX))
}

pub fn arb_stamp(g: &mut Gen) -> VisitStamp {
    VisitStamp(g.gen_range(0..u64::MAX))
}

pub fn arb_frame(g: &mut Gen) -> TokenFrame {
    let cap = g.gen_range(1usize..6);
    let appends = g.vec(0..8, |g| (arb_node(g), g.gen_range(0u64..100)));
    let satisfied = g.vec(0..6, |g| (arb_node(g), g.gen_range(0u64..50)));
    let excluded = g.vec(0..4, arb_node);
    let mut frame = TokenFrame::new(cap);
    for (origin, payload) in appends {
        frame.on_possess(origin, true);
        frame.append(origin, payload);
    }
    for (origin, seq) in satisfied {
        frame.mark_satisfied(RequestId::new(origin, seq));
    }
    for node in excluded {
        frame.exclude(node);
    }
    frame
}

/// The regen frame behind one of the shared `0x20`-block tags.
pub fn regen_msg_for_tag(tag: u8, g: &mut Gen) -> RegenMsg {
    match tag {
        0x20 => RegenMsg::Inquiry {
            generation: g.gen_range(0u32..100),
        },
        0x21 => RegenMsg::Reply(RegenReply {
            generation: g.gen_range(0u32..100),
            stamp: arb_stamp(g),
            holder: g.gen_bool(0.5),
            passed_to: if g.gen_bool(0.5) {
                Some(arb_node(g))
            } else {
                None
            },
            applied_seq: g.gen_range(0u64..10_000),
        }),
        0x22 => RegenMsg::Please {
            new_gen: g.gen_range(0u32..100),
            known_seq: g.gen_range(0u64..10_000),
            dead: g.vec(0..5, arb_node),
        },
        0x23 => RegenMsg::Rejoin,
        0x24 => RegenMsg::Leave,
        0x25 => RegenMsg::SyncRequest {
            from_seq: g.gen_range(0u64..10_000),
        },
        0x26 => RegenMsg::SyncReply {
            entries: g.vec(0..6, |g| LogEntry {
                seq: g.gen_range(0u64..10_000),
                origin: arb_node(g),
                payload: g.gen_range(0u64..1000),
                round: g.gen_range(0u64..500),
            }),
        },
        0x27 => RegenMsg::TokenAck {
            generation: g.gen_range(0u32..100),
            transfer_seq: g.gen_range(0u64..10_000),
        },
        0x28 => RegenMsg::GenAnnounce {
            generation: g.gen_range(0u32..100),
        },
        other => panic!("no regen generator for tag {other:#04x} — codec grew a frame the fuzz corpus does not cover"),
    }
}

/// One [`BinaryMsg`] that encodes to exactly `tag`.
pub fn binary_msg_for_tag(tag: u8, g: &mut Gen) -> BinaryMsg {
    match tag {
        0x01 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::Rotate,
        },
        0x02 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::Grant {
                for_req: arb_req(g),
                return_to: arb_node(g),
            },
        },
        0x03 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::CleanupHop {
                for_req: arb_req(g),
                return_to: arb_node(g),
                trail: g.vec(0..6, arb_node),
            },
        },
        0x04 => BinaryMsg::Token {
            frame: Box::new(arb_frame(g)),
            mode: TokenMode::Return,
        },
        0x10 => BinaryMsg::Gimme(Gimme {
            origin: arb_node(g),
            req: arb_req(g),
            origin_stamp: arb_stamp(g),
            span: g.gen_range(0u32..4096),
            trail: g.vec(0..8, arb_node),
        }),
        0x11 => BinaryMsg::DirectedProbe {
            origin: arb_node(g),
            req: arb_req(g),
            span: g.gen_range(0u32..4096),
        },
        0x12 => BinaryMsg::DirectedReply {
            probed: arb_node(g),
            stamp: arb_stamp(g),
            req: arb_req(g),
            span: g.gen_range(0u32..4096),
        },
        0x13 => BinaryMsg::ProbeReq {
            holder: arb_node(g),
            span: g.gen_range(0u32..4096),
        },
        0x14 => BinaryMsg::ProbeHit {
            origin: arb_node(g),
            req: arb_req(g),
        },
        regen => BinaryMsg::Regen(regen_msg_for_tag(regen, g)),
    }
}

/// One [`NaimiMsg`] that encodes to exactly `tag`.
pub fn naimi_msg_for_tag(tag: u8, g: &mut Gen) -> NaimiMsg {
    match tag {
        0x40 => NaimiMsg::Request {
            origin: arb_node(g),
            req: arb_req(g),
            attempt: g.gen_range(0u32..16),
            hops: g.gen_range(0u32..64),
        },
        0x41 => NaimiMsg::Token {
            frame: Box::new(arb_frame(g)),
            grant_for: None,
        },
        0x42 => NaimiMsg::Token {
            frame: Box::new(arb_frame(g)),
            grant_for: Some(arb_req(g)),
        },
        regen => NaimiMsg::Regen(regen_msg_for_tag(regen, g)),
    }
}

/// One [`RingMsg`] that encodes to exactly `tag`.
pub fn ring_msg_for_tag(tag: u8, g: &mut Gen) -> RingMsg {
    match tag {
        0x30 => RingMsg::Token(Box::new(arb_frame(g))),
        regen => RingMsg::Regen(regen_msg_for_tag(regen, g)),
    }
}

/// One [`SearchMsg`] that encodes to exactly `tag`.
pub fn search_msg_for_tag(tag: u8, g: &mut Gen) -> SearchMsg {
    match tag {
        0x38 => SearchMsg::Token {
            frame: Box::new(arb_frame(g)),
            grant_for: None,
        },
        0x39 => SearchMsg::Token {
            frame: Box::new(arb_frame(g)),
            grant_for: Some(arb_req(g)),
        },
        0x3a => SearchMsg::Gimme {
            origin: arb_node(g),
            req: arb_req(g),
            hops: g.gen_range(0u32..64),
        },
        regen => SearchMsg::Regen(regen_msg_for_tag(regen, g)),
    }
}

pub fn arb_msg(g: &mut Gen) -> BinaryMsg {
    binary_msg_for_tag(*g.pick(known_binary_tags()), g)
}

pub fn arb_naimi_msg(g: &mut Gen) -> NaimiMsg {
    naimi_msg_for_tag(*g.pick(known_naimi_tags()), g)
}

pub fn arb_ring_msg(g: &mut Gen) -> RingMsg {
    ring_msg_for_tag(*g.pick(known_ring_tags()), g)
}

pub fn arb_search_msg(g: &mut Gen) -> SearchMsg {
    search_msg_for_tag(*g.pick(known_search_tags()), g)
}

/// Flips one seeded byte of `bytes` in place (the XOR mask is never zero,
/// so the frame always differs) and reports where. Shared by the
/// per-framing corrupted-byte negative tests: position 0 is the tag, so
/// callers can tell "reinterpreted as another variant" from "don't-care
/// payload byte".
pub fn corrupt_one_byte(bytes: &mut [u8], g: &mut Gen) -> (usize, u8) {
    let idx = g.gen_range(0..bytes.len() as u64) as usize;
    let mask = g.gen_range(1u8..=u8::MAX);
    bytes[idx] ^= mask;
    (idx, mask)
}

/// One encoded frame for every `(framing, tag)` pair — the exhaustive
/// tag-driven corpus as bytes, for tests that operate below the codec
/// (streaming framer splits, envelope handling).
pub fn encoded_corpus(g: &mut Gen) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for &tag in known_ring_tags() {
        frames.push(encode_ring_msg(&ring_msg_for_tag(tag, g)));
    }
    for &tag in known_search_tags() {
        frames.push(encode_search_msg(&search_msg_for_tag(tag, g)));
    }
    for &tag in known_binary_tags() {
        frames.push(encode_binary_msg(&binary_msg_for_tag(tag, g)));
    }
    for &tag in known_naimi_tags() {
        frames.push(encode_naimi_msg(&naimi_msg_for_tag(tag, g)));
    }
    frames
}
