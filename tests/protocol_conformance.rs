//! Cross-protocol conformance: every `Protocol` variant runs the same
//! (seed × delivery strategy × fault profile) matrix under the full DST
//! oracle set, and the verdicts must agree cell by cell.
//!
//! The DST explorer draws its own cases, so two protocols never see quite
//! the same schedule there. This suite removes that freedom: each matrix
//! cell is one hand-built [`DstCase`] — identical workload, adversary, and
//! fault script — run once per protocol. A protocol that only survives the
//! schedules its own generator happens to draw fails here.

use adaptive_token_passing::core::ProtocolConfig;
use adaptive_token_passing::sim::dst::{run_case, DstCase, StrategySpec};
use adaptive_token_passing::sim::Protocol;

const N: usize = 6;

/// The request script shared by every cell: derived from the seed alone so
/// each seed exercises a different load pattern, with distinct payloads so
/// every request maps to exactly one grant.
fn requests(seed: u64) -> Vec<(u64, u32, u64)> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut out = Vec::with_capacity(8);
    for k in 0..8u64 {
        // SplitMix-style scramble; cheap and stable across platforms.
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        out.push((x % 120, (x >> 32) as u32 % N as u32, 100 + k));
    }
    out.sort_unstable();
    out
}

/// A named fault script applied on top of the clean base case.
struct FaultProfile {
    name: &'static str,
    apply: fn(&mut DstCase),
}

fn arm_recovery(case: &mut DstCase) {
    case.cfg = case
        .cfg
        .with_token_acks(true)
        .with_regeneration(case.cfg.effective_regen_timeout(case.n));
}

const PROFILES: &[FaultProfile] = &[
    FaultProfile {
        name: "clean",
        apply: |_| {},
    },
    // Every frame duplicated: watermarks must make this free (benign).
    FaultProfile {
        name: "dup-all",
        apply: |c| c.link_dup_p = 1.0,
    },
    // Control-plane drops: searches and traps vanish, the token survives.
    FaultProfile {
        name: "control-drops",
        apply: |c| c.drop_p = 0.3,
    },
    // Whole-link loss, token frames included: acks + regeneration armed.
    FaultProfile {
        name: "token-loss",
        apply: |c| {
            c.link_loss_p = 0.15;
            arm_recovery(c);
        },
    },
    // Scripted split/heal: the dual-token-after-heal oracle arms itself.
    FaultProfile {
        name: "partition",
        apply: |c| {
            c.partition = Some((20, 80, N as u32 / 2));
            arm_recovery(c);
        },
    },
    // Crash the initial holder, recover it later.
    FaultProfile {
        name: "crash-recover",
        apply: |c| {
            c.crash = Some((5, 0, 90));
            c.cfg = c.cfg.with_regeneration(c.cfg.effective_regen_timeout(c.n));
        },
    },
];

fn strategies(seed: u64) -> Vec<StrategySpec> {
    vec![
        StrategySpec::Fifo,
        StrategySpec::Lifo,
        StrategySpec::Shuffle(seed ^ 0xdead_beef),
        StrategySpec::StarveControl,
        StrategySpec::DelayToken,
    ]
}

/// One matrix cell, instantiated for a protocol.
fn cell(protocol: Protocol, seed: u64, strategy: StrategySpec, profile: &FaultProfile) -> DstCase {
    let mut case = DstCase {
        protocol,
        n: N,
        world_seed: seed,
        latency: (1, 1),
        drop_p: 0.0,
        requests: requests(seed),
        crash: None,
        cfg: ProtocolConfig::default(),
        strategy,
        link_loss_p: 0.0,
        link_dup_p: 0.0,
        partition: None,
    };
    (profile.apply)(&mut case);
    case
}

/// The conformance matrix: every protocol survives every cell, and within
/// a cell every protocol reaches the same verdict.
///
/// For benign cells (clean, dup-all) the oracles already guarantee full
/// service; this test additionally pins grant-order totality — each of the
/// eight distinct requests is granted exactly once, by every protocol, so
/// the grant sequences are total orders over the same request set.
#[test]
fn all_protocols_agree_on_the_conformance_matrix() {
    for seed in [1u64, 7, 23] {
        for strategy in strategies(seed) {
            for profile in PROFILES {
                let mut grants = Vec::with_capacity(Protocol::ALL.len());
                for protocol in Protocol::ALL {
                    let case = cell(protocol, seed, strategy.clone(), profile);
                    let benign = case.is_benign();
                    let stats = run_case(&case).unwrap_or_else(|v| {
                        panic!(
                            "{} failed cell (seed {seed}, {}, {}): {v}",
                            protocol.label(),
                            strategy.label(),
                            profile.name
                        )
                    });
                    if benign {
                        assert_eq!(
                            stats.grants,
                            case.requests.len() as u64,
                            "{}: benign cell (seed {seed}, {}, {}) must grant every \
                             request exactly once",
                            protocol.label(),
                            strategy.label(),
                            profile.name
                        );
                    }
                    grants.push(stats.grants);
                }
                // Benign cells: identical totality across protocols.
                if profile.name == "clean" || profile.name == "dup-all" {
                    assert!(
                        grants.windows(2).all(|w| w[0] == w[1]),
                        "grant totals diverged across protocols in cell \
                         (seed {seed}, {}, {}): {grants:?}",
                        strategy.label(),
                        profile.name
                    );
                }
            }
        }
    }
}

/// Duplication conformance at full strength, protocol by protocol: with
/// every frame copied, the duplicate-token and prefix oracles must hold
/// and the grant count must not inflate — a duplicated grant would show up
/// here as `grants > requests`.
#[test]
fn duplication_never_inflates_grants() {
    for protocol in Protocol::ALL {
        for seed in [3u64, 11] {
            let case = cell(
                protocol,
                seed,
                StrategySpec::Fifo,
                &FaultProfile {
                    name: "dup-all",
                    apply: |c| c.link_dup_p = 1.0,
                },
            );
            let stats = run_case(&case)
                .unwrap_or_else(|v| panic!("{} (seed {seed}): {v}", protocol.label()));
            assert_eq!(
                stats.grants,
                case.requests.len() as u64,
                "{} (seed {seed}): duplicated frames changed the grant count",
                protocol.label()
            );
        }
    }
}

/// The partition profile must actually partition: the case horizon extends
/// past the heal plus the fencing window, so the dual-token oracle is armed
/// in every partition cell rather than trivially skipped.
#[test]
fn partition_cells_arm_the_heal_oracle() {
    let profile = PROFILES.iter().find(|p| p.name == "partition").unwrap();
    let case = cell(Protocol::Naimi, 1, StrategySpec::Fifo, profile);
    let (_, heal, _) = case.partition.expect("partition profile must split");
    assert!(case.horizon() > heal + case.settle_ticks());
}
