//! End-to-end determinism: a run is a pure function of its seed. The
//! serialized `RunSummary` (a deterministic JSON rendering with fixed field
//! order) must be byte-identical across reruns with the same seed, and the
//! seed must actually matter — different seeds give different traces.

use adaptive_token_passing::sim::runner::{run_experiment, ExperimentSpec, Protocol};
use adaptive_token_passing::sim::workload::GlobalPoisson;

fn summary_json(protocol: Protocol, seed: u64) -> String {
    let spec = ExperimentSpec::new(protocol, 24, 4_000)
        .with_seed(seed)
        .with_latency(1, 3);
    let mut wl = GlobalPoisson::new(8.0);
    run_experiment(&spec, &mut wl).to_json()
}

/// Same seed, same protocol ⇒ byte-identical summaries, for all three
/// protocols (ring, search, binary).
#[test]
fn same_seed_is_byte_identical() {
    for protocol in Protocol::ALL {
        let a = summary_json(protocol, 42);
        let b = summary_json(protocol, 42);
        assert_eq!(a, b, "{}: summary not reproducible", protocol.label());
        assert!(a.starts_with('{') && a.ends_with('}'), "summary is JSON");
    }
}

/// Different seeds drive different arrival streams and latencies, so the
/// event traces — and hence the summaries — must differ.
#[test]
fn different_seeds_produce_different_traces() {
    for protocol in Protocol::ALL {
        let a = summary_json(protocol, 1);
        let b = summary_json(protocol, 2);
        assert_ne!(a, b, "{}: seed had no effect on the run", protocol.label());
    }
}

/// Reproducibility is per-protocol, not accidental: with everything else
/// fixed, the three protocols disagree with each other.
#[test]
fn protocols_produce_distinct_summaries()
{
    let ring = summary_json(Protocol::Ring, 7);
    let search = summary_json(Protocol::Search, 7);
    let binary = summary_json(Protocol::Binary, 7);
    assert_ne!(ring, search);
    assert_ne!(search, binary);
    assert_ne!(ring, binary);
}
