//! End-to-end determinism: a run is a pure function of its seed. The
//! serialized `RunSummary` (a deterministic JSON rendering with fixed field
//! order) must be byte-identical across reruns with the same seed, and the
//! seed must actually matter — different seeds give different traces.

use adaptive_token_passing::sim::experiments::{
    ablation, drops, failure, fairness, fig10, fig9, geo, latency, messages, partition,
    throughput, worstcase,
};
use adaptive_token_passing::sim::runner::{run_experiment, ExperimentSpec, NetProfile, Protocol};
use adaptive_token_passing::sim::sweep::{run_points, PointSpec, WorkloadSpec};
use adaptive_token_passing::sim::workload::GlobalPoisson;
use adaptive_token_passing::util::pool;

fn summary_json(protocol: Protocol, seed: u64) -> String {
    let spec = ExperimentSpec::new(protocol, 24, 4_000)
        .with_seed(seed)
        .with_net(NetProfile::unit().latency(1, 3));
    let mut wl = GlobalPoisson::new(8.0);
    run_experiment(&spec, &mut wl).to_json()
}

/// Same seed, same protocol ⇒ byte-identical summaries, for all three
/// protocols (ring, search, binary).
#[test]
fn same_seed_is_byte_identical() {
    for protocol in Protocol::ALL {
        let a = summary_json(protocol, 42);
        let b = summary_json(protocol, 42);
        assert_eq!(a, b, "{}: summary not reproducible", protocol.label());
        assert!(a.starts_with('{') && a.ends_with('}'), "summary is JSON");
    }
}

/// Different seeds drive different arrival streams and latencies, so the
/// event traces — and hence the summaries — must differ.
#[test]
fn different_seeds_produce_different_traces() {
    for protocol in Protocol::ALL {
        let a = summary_json(protocol, 1);
        let b = summary_json(protocol, 2);
        assert_ne!(a, b, "{}: seed had no effect on the run", protocol.label());
    }
}

/// Reproducibility is per-protocol, not accidental: with everything else
/// fixed, the three protocols disagree with each other.
#[test]
fn protocols_produce_distinct_summaries()
{
    let ring = summary_json(Protocol::Ring, 7);
    let search = summary_json(Protocol::Search, 7);
    let binary = summary_json(Protocol::Binary, 7);
    assert_ne!(ring, search);
    assert_ne!(search, binary);
    assert_ne!(ring, binary);
}

/// The parallel sweep executor must not change results: the Figure 9
/// series values are bitwise identical whether the sweep runs on one
/// worker or eight (the in-process equivalent of `ATP_THREADS=1` vs
/// `ATP_THREADS=8`).
#[test]
fn fig9_series_is_identical_serial_vs_parallel() {
    let cfg = fig9::Config::quick();
    let serial: Vec<(usize, u64, u64)> = pool::with_threads(1, || {
        fig9::series(&cfg)
            .iter()
            .map(|p| (p.n, p.ring.to_bits(), p.binary.to_bits()))
            .collect()
    });
    let parallel = pool::with_threads(8, || {
        fig9::series(&cfg)
            .iter()
            .map(|p| (p.n, p.ring.to_bits(), p.binary.to_bits()))
            .collect::<Vec<_>>()
    });
    assert_eq!(serial, parallel, "Figure 9 series values diverged (bitwise)");
}

/// Every figure/table experiment renders byte-identically on one worker
/// and on eight — the whole reproduction is scheduling-independent, not
/// just the two experiments that happened to be spot-checked.
#[test]
fn all_experiments_render_identically_serial_vs_parallel() {
    macro_rules! check_serial_vs_parallel {
        ($($module:ident),+ $(,)?) => {
            $({
                let cfg = $module::Config::quick();
                let serial = pool::with_threads(1, || $module::run(&cfg).render());
                let parallel = pool::with_threads(8, || $module::run(&cfg).render());
                assert_eq!(
                    serial,
                    parallel,
                    concat!(
                        "rendered ",
                        stringify!($module),
                        " table diverged between 1 and 8 workers"
                    )
                );
            })+
        };
    }
    check_serial_vs_parallel!(
        ablation, drops, failure, fairness, fig10, fig9, geo, latency, messages, partition,
        throughput, worstcase,
    );
}

/// At the `run_points` layer: the full `RunSummary::to_json` strings — every
/// metric, counter and duration — are byte-identical at any worker count.
#[test]
fn run_points_json_is_identical_serial_vs_parallel() {
    let points: Vec<PointSpec> = Protocol::ALL
        .iter()
        .flat_map(|&protocol| {
            (0..4).map(move |k| {
                PointSpec::new(
                    ExperimentSpec::new(protocol, 16, 2_000)
                        .with_seed(100 + k)
                        .with_net(NetProfile::unit().latency(1, 3)),
                    WorkloadSpec::global_poisson(6.0 + k as f64),
                )
            })
        })
        .collect();
    let json = |threads: usize| {
        pool::with_threads(threads, || {
            run_points(&points)
                .iter()
                .map(|s| s.to_json())
                .collect::<Vec<String>>()
        })
    };
    let serial = json(1);
    let parallel = json(8);
    assert_eq!(serial.len(), points.len());
    assert_eq!(serial, parallel, "RunSummary JSON diverged across thread counts");
}
