//! Checkpoint durability properties: drive every protocol to a seeded
//! random state inside the deterministic `World`, then require that the
//! durable core survives the full crash pipeline —
//! capture → encode → decode → restore → re-capture — byte-for-byte.
//!
//! The property runs all four protocols per generated scenario so a
//! counterexample shrinks to the smallest *workload*, not the smallest
//! protocol-specific accident. Random single-byte mutations of the
//! encoded form must never panic the decoder.

use atp_core::{Checkpoint, ProtocolConfig, Want, WireProtocol};
use atp_core::{BinaryNode, NaimiNode, RingNode, SearchNode};
use atp_net::{NodeId, SimTime, World, WorldConfig};
use atp_util::check::{Check, Gen};
use atp_util::rng::Rng;

/// A seeded workload: ring size, feature toggles, request script.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    regeneration: bool,
    token_acks: bool,
    requests: Vec<(u64, u32, u64)>,
    horizon: u64,
    seed: u64,
}

fn scenario(g: &mut Gen) -> Scenario {
    let n = g.gen_range(2..7usize);
    let k = g.gen_range(0..8u32);
    let requests = (0..k)
        .map(|_| {
            (
                g.gen_range(0..120u64),
                g.gen_range(0..n as u32),
                g.gen_range(0..1000u64),
            )
        })
        .collect();
    Scenario {
        n,
        regeneration: g.gen_bool(0.5),
        token_acks: g.gen_bool(0.5),
        requests,
        horizon: 200,
        seed: g.gen_range(0..u64::MAX),
    }
}

fn config(s: &Scenario) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::default();
    if s.regeneration {
        cfg = cfg.with_regeneration(0);
    }
    if s.token_acks {
        cfg = cfg.with_token_acks(true);
    }
    cfg
}

/// Runs the workload, then pushes every node's state through the crash
/// pipeline and checks nothing durable was bent.
fn roundtrips<P: WireProtocol>(s: &Scenario) {
    let cfg = config(s);
    let mut world: World<P> = World::from_nodes(
        (0..s.n).map(|_| P::build(cfg)).collect(),
        WorldConfig::default().seed(s.seed),
    );
    for &(t, node, payload) in &s.requests {
        world.schedule_external(SimTime::from_ticks(t), NodeId::new(node), Want::new(payload));
    }
    world.run_until(SimTime::from_ticks(s.horizon));

    for i in 0..s.n {
        let ck = world.node(NodeId::new(i as u32)).checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("decode of a fresh encode");
        assert_eq!(back, ck, "wire roundtrip must be lossless");
        let restored = P::restore(cfg, &back);
        assert_eq!(
            restored.checkpoint(),
            ck,
            "restore must preserve every durable field"
        );
    }
}

#[test]
fn checkpoints_survive_the_crash_pipeline_for_every_protocol() {
    Check::new("checkpoint_roundtrip").cases(32).run(scenario, |s| {
        roundtrips::<RingNode>(s);
        roundtrips::<SearchNode>(s);
        roundtrips::<BinaryNode>(s);
        roundtrips::<NaimiNode>(s);
    });
}

/// Checkpoints cross the wire like any frame, so a flipped byte must be
/// survivable: decode returns (any) result instead of panicking, and a
/// successful decode still restores without tripping internal asserts —
/// unless the corruption forged the digest/log pair, which the restore
/// path is *supposed* to reject loudly.
#[test]
fn mutated_checkpoint_bytes_never_panic_the_decoder() {
    Check::new("checkpoint_mutation").cases(32).run(
        |g| {
            let s = scenario(g);
            (s, g.gen_range(0..u64::MAX), g.gen_range(1..=255u32) as u8)
        },
        |(s, pos_seed, flip)| {
            let cfg = config(s);
            let mut world: World<BinaryNode> = World::from_nodes(
                (0..s.n).map(|_| BinaryNode::new(cfg)).collect(),
                WorldConfig::default().seed(s.seed),
            );
            for &(t, node, payload) in &s.requests {
                world.schedule_external(
                    SimTime::from_ticks(t),
                    NodeId::new(node),
                    Want::new(payload),
                );
            }
            world.run_until(SimTime::from_ticks(s.horizon));
            let ck = world.node(NodeId::new(0)).checkpoint();
            let mut bytes = ck.to_bytes();
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= flip;
            // Must not panic; a clean decode of forged bytes is fine here —
            // digest-vs-log integrity is enforced by restore, not decode.
            let _ = Checkpoint::from_bytes(&bytes);
        },
    );
}
