//! Integration tests for the paper's quantitative claims, run through the
//! full experiment stack (protocols + simulator + workloads + metrics).

use adaptive_token_passing::net::{NodeId, SimTime};
use adaptive_token_passing::sim::runner::{run_experiment, ExperimentSpec, Protocol};
use adaptive_token_passing::sim::stats::log2;
use adaptive_token_passing::sim::workload::{GlobalPoisson, Saturated, SingleShot};

/// Lemma 4: the ring's responsiveness is O(N) — and indeed ≤ N for a single
/// request at unit delay.
#[test]
fn lemma4_ring_single_request_within_n() {
    for n in [8, 16, 32, 64] {
        for pos in [1, n / 3, n / 2, n - 1] {
            let spec = ExperimentSpec::new(Protocol::Ring, n, 10 + 8 * n as u64);
            let mut wl = SingleShot::new(SimTime::from_ticks(7), NodeId::new(pos as u32));
            let s = run_experiment(&spec, &mut wl);
            assert_eq!(s.metrics.grants, 1);
            assert!(
                s.metrics.waiting.max <= n as u64 + 2,
                "n={n} pos={pos}: waited {} > N",
                s.metrics.waiting.max
            );
        }
    }
}

/// Theorem 2: BinarySearch's responsiveness is O(log N) — within a small
/// constant of log₂ N for a single request, at every position.
#[test]
fn theorem2_binary_single_request_logarithmic() {
    for n in [16, 64, 256] {
        let bound = (4.0 * log2(n) + 4.0) as u64;
        for pos in [1, n / 3, n / 2, n - 1] {
            // Fire after one full rotation: rule 6's history comparison is
            // only informative once every node has been visited (the paper's
            // analysis is for the steady state).
            let warm = 2 * n as u64 + 7;
            let spec = ExperimentSpec::new(Protocol::Binary, n, warm + 8 * n as u64);
            let mut wl = SingleShot::new(SimTime::from_ticks(warm), NodeId::new(pos as u32));
            let s = run_experiment(&spec, &mut wl);
            assert_eq!(s.metrics.grants, 1);
            assert!(
                s.metrics.waiting.max <= bound,
                "n={n} pos={pos}: waited {} > {bound}",
                s.metrics.waiting.max
            );
        }
    }
}

/// Responsiveness under simultaneous demand is O(1)-ish per grant — the
/// paper's note that all-nodes-ready gives O(1) responsiveness even though
/// average waiting is O(N).
#[test]
fn saturated_responsiveness_is_constant_waiting_is_linear() {
    let n = 32;
    let spec = ExperimentSpec::new(Protocol::Ring, n, 5_000);
    let mut wl = Saturated::new(1);
    let s = run_experiment(&spec, &mut wl);
    assert!(
        s.metrics.responsiveness.mean < 4.0,
        "responsiveness {} should be O(1)",
        s.metrics.responsiveness.mean
    );
    assert!(
        s.metrics.waiting.mean > n as f64 / 4.0,
        "waiting {} should be O(N)",
        s.metrics.waiting.mean
    );
}

/// The headline crossover: binary ≈ ring under saturation, binary ≫ ring
/// under light load.
#[test]
fn binary_matches_ring_busy_and_beats_it_idle() {
    let n = 64;
    let measure = |protocol: Protocol, gap: f64| {
        let spec = ExperimentSpec::new(protocol, n, 40_000).with_seed(3);
        let mut wl = GlobalPoisson::new(gap);
        run_experiment(&spec, &mut wl).metrics.responsiveness.mean
    };
    // Busy: within 2x of each other.
    let ring_busy = measure(Protocol::Ring, 2.0);
    let binary_busy = measure(Protocol::Binary, 2.0);
    assert!(
        binary_busy < 2.0 * ring_busy + 2.0,
        "busy: binary {binary_busy} vs ring {ring_busy}"
    );
    // Idle: at least 3x better.
    let ring_idle = measure(Protocol::Ring, 500.0);
    let binary_idle = measure(Protocol::Binary, 500.0);
    assert!(
        binary_idle * 3.0 < ring_idle,
        "idle: binary {binary_idle} vs ring {ring_idle}"
    );
}

/// Lemma 6 at integration level: search cost per request grows
/// logarithmically while the linear search grows linearly.
#[test]
fn lemma6_message_scaling() {
    let cost = |protocol: Protocol, n: usize| {
        let spec = ExperimentSpec::new(protocol, n, 10 + 8 * n as u64);
        let mut wl = SingleShot::new(SimTime::from_ticks(5), NodeId::new(n as u32 / 2));
        run_experiment(&spec, &mut wl).net.control_sent
    };
    let b64 = cost(Protocol::Binary, 64);
    let b512 = cost(Protocol::Binary, 512);
    assert!(
        b512 <= b64 + 4,
        "binary search cost should grow ~log: {b64} → {b512}"
    );
    let s64 = cost(Protocol::Search, 64);
    let s512 = cost(Protocol::Search, 512);
    assert!(
        s512 >= 4 * s64,
        "linear search cost should grow ~linearly: {s64} → {s512}"
    );
}
