//! End-to-end checks on the observability layer: Lemma 6's forward bound
//! measured (not inferred) from request-lifecycle spans, golden-file
//! stability of the JSON-lines trace export, and exact registry merging
//! across thread counts.

use adaptive_token_passing::sim::obs::{self, TRACE_CAPACITY};
use adaptive_token_passing::sim::runner::{
    run_experiment, run_experiment_traced, ExperimentSpec, NetProfile, Protocol,
};
use adaptive_token_passing::sim::sweep::{run_points, PointSpec, WorkloadSpec};
use adaptive_token_passing::sim::workload::GlobalPoisson;
use adaptive_token_passing::util::pool;

/// Lemma 6: under System BinarySearch a request is forwarded O(log N)
/// times. Measured directly: every span's forward count from a pinned
/// N = 128 run must stay within a small constant of log₂ N.
#[test]
fn lemma6_forwards_bounded_by_log_n() {
    let n = 128;
    let spec = ExperimentSpec::new(Protocol::Binary, n, 20_000).with_seed(7);
    let mut wl = GlobalPoisson::new(10.0);
    let (summary, artifacts) = run_experiment_traced(&spec, &mut wl, TRACE_CAPACITY);
    assert!(summary.spans.closed > 100, "need a populated run");
    assert!(!artifacts.spans.is_empty());

    let log2n = (n as f64).log2(); // 7
    let bound = (3.0 * log2n).ceil() as u64; // c = 3 ⇒ 21
    let max = artifacts.spans.iter().map(|s| s.forwards).max().unwrap();
    assert_eq!(
        max, summary.spans.max_forwards,
        "per-span max must agree with the report"
    );
    assert!(
        max <= bound,
        "Lemma 6 violated: max forwards {max} > {bound} (= 3·log2 {n})"
    );
    // And the bound is not vacuous — searches do forward.
    assert!(max >= 1, "no request was ever forwarded");
}

/// The JSON-lines trace export of a pinned seed is byte-stable. Regenerate
/// the golden with `ATP_BLESS=1 cargo test -q --test observability`.
#[test]
fn trace_export_matches_golden() {
    let spec = ExperimentSpec::new(Protocol::Binary, 8, 300)
        .with_seed(3)
        .with_net(NetProfile::unit().latency(1, 2));
    let mut wl = GlobalPoisson::new(12.0);
    let (_, artifacts) = run_experiment_traced(&spec, &mut wl, TRACE_CAPACITY);
    let jsonl = obs::trace_jsonl(&artifacts);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/span_trace.jsonl");
    if std::env::var_os("ATP_BLESS").is_some() {
        std::fs::write(golden_path, &jsonl).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with ATP_BLESS=1 to create it");
    assert_eq!(
        jsonl, golden,
        "trace export drifted from tests/golden/span_trace.jsonl; \
         if intentional, re-bless with ATP_BLESS=1"
    );
}

/// Acceptance: metrics dumps are byte-identical between ATP_THREADS=1 and
/// ATP_THREADS=8 — the registry merge is exact, so sharding the sweep
/// differently cannot change a single byte.
#[test]
fn merged_metrics_identical_at_1_and_8_threads() {
    let points: Vec<PointSpec> = Protocol::ALL
        .iter()
        .flat_map(|&protocol| {
            (0..3).map(move |k| {
                PointSpec::new(
                    ExperimentSpec::new(protocol, 16, 1_500).with_seed(50 + k),
                    WorkloadSpec::global_poisson(7.0 + k as f64),
                )
            })
        })
        .collect();
    let metrics_json = |threads: usize| {
        pool::with_threads(threads, || {
            obs::merged_registry(&run_points(&points)).to_json()
        })
    };
    let one = metrics_json(1);
    let eight = metrics_json(8);
    assert!(!one.is_empty());
    assert_eq!(one, eight, "metrics artifact differs across thread counts");
}

/// Span records survive the run JSON: the summary embeds the span report
/// with the same counts the raw spans show.
#[test]
fn run_json_embeds_span_report() {
    let spec = ExperimentSpec::new(Protocol::Binary, 16, 2_000).with_seed(11);
    let mut wl = GlobalPoisson::new(9.0);
    let summary = run_experiment(&spec, &mut wl);
    let v = adaptive_token_passing::util::json::parse(&summary.to_json()).expect("run JSON parses");
    let spans = v.get("spans").expect("spans object in run JSON");
    assert_eq!(
        spans.get("closed").and_then(|c| c.as_u64()),
        Some(summary.spans.closed)
    );
    assert_eq!(
        spans.get("max_forwards").and_then(|c| c.as_u64()),
        Some(summary.spans.max_forwards)
    );
}
