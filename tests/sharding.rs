//! Property tests for the consistent-hash shard map: rebalance
//! minimality over seeded membership churn, single-ownership at every
//! step, and placement byte-identity across `ATP_THREADS`.

use adaptive_token_passing::core::{ShardId, ShardMap};
use adaptive_token_passing::util::pool;
use adaptive_token_passing::util::rng::{Rng, SeedableRng, StdRng};

/// Drives `steps` random add/remove operations against one map, checking
/// after every operation that
///
/// 1. the reported moves are exactly the owner-diff (no unreported churn,
///    no spurious moves),
/// 2. minimality by construction: an add only moves shards *to* the new
///    node, a remove only moves shards *from* the departed one,
/// 3. every shard always has exactly one owner, and it is a live member.
fn churn(seed: u64, shards: u16, steps: u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n0 = rng.gen_range(1..6usize);
    let mut map = ShardMap::new(shards, n0);
    let mut members: Vec<u32> = (0..n0 as u32).collect();
    let mut next_id = n0 as u32;

    for step in 0..steps {
        let before = map.owners().to_vec();
        let add = members.len() == 1 || rng.gen_range(0..2u32) == 0;
        let (moves, joined, left) = if add {
            let node = next_id;
            next_id += 1;
            members.push(node);
            (map.add_node(node), Some(node), None)
        } else {
            let idx = rng.gen_range(0..members.len());
            let node = members.swap_remove(idx);
            (map.remove_node(node), None, Some(node))
        };
        let after = map.owners().to_vec();

        // (1) Moves are exactly the diff of the placement function.
        let mut diff = 0;
        for s in 0..shards {
            let shard = ShardId(s);
            let (old, new) = (before[shard.index()], after[shard.index()]);
            if old != new {
                diff += 1;
                let mv = moves
                    .iter()
                    .find(|m| m.shard == shard)
                    .unwrap_or_else(|| panic!("seed {seed} step {step}: unreported move of {shard}"));
                assert_eq!((mv.from, mv.to), (old, new), "seed {seed} step {step}");
            } else {
                assert!(
                    !moves.iter().any(|m| m.shard == shard),
                    "seed {seed} step {step}: spurious move of unchanged {shard}"
                );
            }
        }
        assert_eq!(moves.len(), diff, "seed {seed} step {step}");

        // (2) Minimality: churn is confined to the node that changed.
        if let Some(node) = joined {
            assert!(
                moves.iter().all(|m| m.to == node),
                "seed {seed} step {step}: join of {node} shuffled bystanders: {moves:?}"
            );
        }
        if let Some(node) = left {
            assert!(
                moves.iter().all(|m| m.from == node),
                "seed {seed} step {step}: leave of {node} shuffled bystanders: {moves:?}"
            );
            assert!(
                after.iter().all(|&o| o != node),
                "seed {seed} step {step}: departed {node} still owns a shard"
            );
        }

        // (3) Exactly one owner per shard, always a live member.
        assert_eq!(after.len(), usize::from(shards));
        for (s, &owner) in after.iter().enumerate() {
            assert!(
                members.contains(&owner),
                "seed {seed} step {step}: shard s{s} owned by non-member {owner}"
            );
        }
    }
}

#[test]
fn rebalance_is_minimal_over_seeded_membership_churn() {
    for seed in 0..32u64 {
        churn(seed, 16, 40);
    }
    churn(99, 1, 40);
    churn(100, 64, 40);
}

#[test]
fn add_then_remove_round_trips_the_placement() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..8usize);
        let k = rng.gen_range(1..32u32) as u16;
        let mut map = ShardMap::new(k, n);
        let before = map.owners().to_vec();
        map.add_node(n as u32);
        map.remove_node(n as u32);
        assert_eq!(
            map.owners(),
            &before[..],
            "seed {seed}: join+leave must restore the exact placement"
        );
    }
}

/// Placement is a pure function of (membership, K, probes): computing it
/// under 1 worker and under 4 must be byte-identical — `ATP_THREADS` can
/// never change where a shard lives.
#[test]
fn placement_is_byte_identical_across_thread_counts() {
    let specs: Vec<(u16, usize)> = vec![(1, 3), (8, 5), (16, 2), (64, 9), (128, 33)];
    let place = |&(k, n): &(u16, usize)| -> Vec<u32> { ShardMap::new(k, n).owners().to_vec() };
    let serial = pool::with_threads(1, || pool::par_map(&specs, place));
    let parallel = pool::with_threads(4, || pool::par_map(&specs, place));
    assert_eq!(serial, parallel);
    // And across repeated evaluation inside one process.
    assert_eq!(serial, pool::with_threads(4, || pool::par_map(&specs, place)));
}

/// Key → shard routing is independent of membership: adding or removing
/// nodes re-homes shards but never remaps a key to a different shard.
#[test]
fn keys_never_change_shard_on_membership_churn() {
    let mut map = ShardMap::new(32, 4);
    let keys: Vec<u64> = (0..200).map(|i| i * 0x9e37 + 11).collect();
    let routed: Vec<ShardId> = keys.iter().map(|&k| map.shard_of_key(k)).collect();
    map.add_node(4);
    map.add_node(5);
    map.remove_node(0);
    let after: Vec<ShardId> = keys.iter().map(|&k| map.shard_of_key(k)).collect();
    assert_eq!(routed, after);
}
