//! `Harness` hosts the same protocol nodes outside a `World`. This test
//! builds a hand-rolled transport — one mpsc channel per node as the link
//! layer, a single clock merging arrivals, timers and stimuli — hosts a
//! ring of protocol nodes on it, and cross-checks the outcome against the
//! identical scenario run inside `World`: same grant order, same applied
//! histories. The harness is generic over every `ProtocolNode`; the
//! adaptive binary search and the Naimi–Tréhel path-reversal protocol both
//! run it, pinned to the same seed and request script.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use adaptive_token_passing::core::{BinaryNode, NaimiNode, ProtocolConfig, TokenEvent, Want};
use adaptive_token_passing::net::{
    Harness, MsgClass, NodeId, SimTime, Topology, World, WorldConfig,
};
use adaptive_token_passing::sim::runner::ProtocolNode;

const N: usize = 5;
const HORIZON: u64 = 300;
/// Matches `ConstantLatency::default()`, the `WorldConfig` default.
const LINK_LATENCY: u64 = 1;

/// What the channel transport routes to a node.
enum Event<M> {
    Msg { from: NodeId, msg: M },
    Timer { kind: u64 },
    Ext(Want),
}

/// The shared scenario: spaced requests plus one same-instant pair.
fn requests() -> Vec<(u64, u32, u64)> {
    vec![(5, 1, 11), (20, 3, 33), (45, 0, 55), (70, 4, 77), (70, 2, 99)]
}

/// A grant, normalized for cross-transport comparison.
type Grant = (u64, u32, u64); // (granted_at, origin, origin_seq)

fn drain_grants(events: Vec<TokenEvent>, grants: &mut Vec<Grant>) {
    for ev in events {
        if let TokenEvent::Granted { req, at } = ev {
            grants.push((at.ticks(), req.origin.raw(), req.seq));
        }
    }
}

/// Runs the scenario on `World` (the canonical engine).
fn run_in_world<P: ProtocolNode>() -> (Vec<Grant>, Vec<(u64, u64)>) {
    let cfg = ProtocolConfig::default();
    let mut world: World<P> = World::from_nodes(
        (0..N).map(|_| P::build(cfg)).collect(),
        WorldConfig::default().seed(7),
    );
    for (t, node, payload) in requests() {
        world.schedule_external(SimTime::from_ticks(t), NodeId::new(node), Want::new(payload));
    }
    world.run_until(SimTime::from_ticks(HORIZON));
    let mut grants = Vec::new();
    let mut histories = Vec::new();
    for i in 0..N {
        let id = NodeId::new(i as u32);
        drain_grants(world.node_mut(id).take_events(), &mut grants);
        let order = world.node(id).order_state();
        histories.push((order.applied_seq(), order.digest().0));
    }
    grants.sort_unstable();
    (grants, histories)
}

/// Runs the identical scenario on `Harness` nodes wired through channels.
fn run_on_channels<P: ProtocolNode>() -> (Vec<Grant>, Vec<(u64, u64)>)
where
    P::Msg: Clone,
{
    run_on_channels_with::<P>(None)
}

/// Like [`run_on_channels`], but when `dup_every_nth_token` is `Some(k)`,
/// every `k`-th token-class frame is sent down its channel twice — a
/// link layer that stutters. Handoff watermarks must absorb the copies.
fn run_on_channels_with<P: ProtocolNode>(
    dup_every_nth_token: Option<u64>,
) -> (Vec<Grant>, Vec<(u64, u64)>)
where
    P::Msg: Clone,
{
    let cfg = ProtocolConfig::default();
    let topology = Topology::ring(N);
    let mut harnesses: Vec<Harness<P>> = (0..N)
        .map(|i| Harness::new(NodeId::new(i as u32), topology, P::build(cfg), 7))
        .collect();

    // One channel per node: the link layer. Senders are cloned per peer in
    // a real deployment; a single router end suffices here.
    #[allow(clippy::type_complexity)]
    let (txs, rxs): (
        Vec<Sender<(u64, NodeId, P::Msg)>>,
        Vec<Receiver<(u64, NodeId, P::Msg)>>,
    ) = (0..N).map(|_| channel()).unzip();

    // The clock: a totally ordered (time, seq) queue, exactly the order a
    // `World` heap would pop. Externals enter first (they are scheduled
    // before the first step), then init effects, then everything routed.
    let mut queue: BTreeMap<(u64, u64), (usize, Event<P::Msg>)> = BTreeMap::new();
    let mut seq = 0u64;
    let push = |queue: &mut BTreeMap<(u64, u64), (usize, Event<P::Msg>)>,
                    seq: &mut u64,
                    at: u64,
                    dest: usize,
                    ev: Event<P::Msg>| {
        queue.insert((at, *seq), (dest, ev));
        *seq += 1;
    };
    for (t, node, payload) in requests() {
        push(
            &mut queue,
            &mut seq,
            t,
            node as usize,
            Event::Ext(Want::new(payload)),
        );
    }

    // Collects a harness's pending effects: outbound messages go down the
    // destination's channel stamped with their arrival time; timers go
    // straight onto the clock.
    let token_frames = std::cell::Cell::new(0u64);
    let route = |h: &mut Harness<P>,
                 now: u64,
                 queue: &mut BTreeMap<(u64, u64), (usize, Event<P::Msg>)>,
                 seq: &mut u64| {
        let from = h.id();
        for ob in h.take_outbound() {
            let tx = &txs[ob.to.index()];
            let arrival = now + LINK_LATENCY + ob.hold;
            if ob.class == MsgClass::Token {
                token_frames.set(token_frames.get() + 1);
                if let Some(k) = dup_every_nth_token {
                    if token_frames.get() % k == 0 {
                        tx.send((arrival, from, ob.msg.clone()))
                            .expect("receiver lives for the whole test");
                    }
                }
            }
            tx.send((arrival, from, ob.msg))
                .expect("receiver lives for the whole test");
        }
        for t in h.take_timers() {
            queue.insert((now + t.delay, *seq), (from.index(), Event::Timer { kind: t.kind }));
            *seq += 1;
        }
    };

    // Drains the links into the clock. Channels preserve send order, so
    // stamping seq at drain time keeps the global order deterministic.
    let drain_links = |queue: &mut BTreeMap<(u64, u64), (usize, Event<P::Msg>)>, seq: &mut u64| {
        for (i, rx) in rxs.iter().enumerate() {
            while let Ok((arrival, from, msg)) = rx.try_recv() {
                queue.insert((arrival, *seq), (i, Event::Msg { from, msg }));
                *seq += 1;
            }
        }
    };

    for h in harnesses.iter_mut() {
        h.init(SimTime::ZERO);
        route(h, 0, &mut queue, &mut seq);
    }
    // Before the clock starts, pull the init-time sends (the minted token)
    // off the links — otherwise the first pop could run ahead of them.
    drain_links(&mut queue, &mut seq);

    let mut grants = Vec::new();
    while let Some((&(at, key_seq), _)) = queue.iter().next() {
        if at > HORIZON {
            break;
        }
        let (dest, ev) = queue.remove(&(at, key_seq)).expect("key just observed");
        let h = &mut harnesses[dest];
        let now = SimTime::from_ticks(at);
        match ev {
            Event::Msg { from, msg } => h.deliver(now, from, msg),
            Event::Timer { kind } => h.fire_timer(now, kind),
            Event::Ext(want) => h.external(now, want),
        }
        route(h, at, &mut queue, &mut seq);
        drain_links(&mut queue, &mut seq);
    }

    let mut histories = Vec::new();
    for h in harnesses.iter_mut() {
        drain_grants(h.node_mut().take_events(), &mut grants);
        let order = h.node().order_state();
        histories.push((order.applied_seq(), order.digest().0));
    }
    grants.sort_unstable();
    (grants, histories)
}

/// The generic body of the cross-transport check, shared by the per-protocol
/// tests below.
fn check_channel_transport_matches_world<P: ProtocolNode>()
where
    P::Msg: Clone,
{
    let (world_grants, world_histories) = run_in_world::<P>();
    let (chan_grants, chan_histories) = run_on_channels::<P>();

    assert_eq!(
        world_grants.len(),
        requests().len(),
        "world must grant every request within the horizon"
    );
    assert_eq!(
        world_grants, chan_grants,
        "granted order diverged between World and the channel transport"
    );
    assert_eq!(
        world_histories, chan_histories,
        "applied histories diverged between World and the channel transport"
    );
}

fn check_duplicated_tokens_change_nothing<P: ProtocolNode>()
where
    P::Msg: Clone,
{
    let (world_grants, world_histories) = run_in_world::<P>();
    let (dup_grants, dup_histories) = run_on_channels_with::<P>(Some(2));
    assert_eq!(
        world_grants, dup_grants,
        "granted order diverged once the transport duplicated token frames"
    );
    assert_eq!(
        world_histories, dup_histories,
        "applied histories diverged once the transport duplicated token frames"
    );
}

fn check_channel_transport_preserves_safety<P: ProtocolNode>()
where
    P::Msg: Clone,
{
    let (grants, histories) = run_on_channels::<P>();
    assert_eq!(grants.len(), requests().len());
    let max = histories.iter().map(|&(len, _)| len).max().unwrap();
    let digest_of_longest = histories
        .iter()
        .find(|&&(len, _)| len == max)
        .map(|&(_, d)| d)
        .unwrap();
    for &(len, digest) in &histories {
        if len == max {
            assert_eq!(digest, digest_of_longest, "diverged history at frontier");
        }
    }
}

/// The same nodes, the same schedule, two transports: behavior must agree.
#[test]
fn channel_transport_matches_world() {
    check_channel_transport_matches_world::<BinaryNode>();
}

/// A stuttering link layer: every 2nd token-class frame is delivered
/// twice. The handoff watermark must discard each copy, so grants and
/// applied histories stay identical to the clean `World` run — duplication
/// costs nothing, not even reordering.
#[test]
fn duplicated_token_frames_do_not_change_behavior() {
    check_duplicated_tokens_change_nothing::<BinaryNode>();
}

/// The channel transport alone: every request granted exactly once and all
/// histories prefix-consistent (equal digests at equal lengths).
#[test]
fn channel_transport_preserves_safety() {
    check_channel_transport_preserves_safety::<BinaryNode>();
}

/// Naimi–Tréhel over the channel transport: path-reversal forwarding and
/// lazy token shipping must behave identically inside and outside `World`.
#[test]
fn naimi_channel_transport_matches_world() {
    check_channel_transport_matches_world::<NaimiNode>();
}

/// Naimi under a stuttering link: a duplicated token frame at the *new*
/// probable owner must be absorbed by the handoff watermark, not re-grant.
#[test]
fn naimi_duplicated_token_frames_do_not_change_behavior() {
    check_duplicated_tokens_change_nothing::<NaimiNode>();
}

/// Naimi safety on the channel transport alone.
#[test]
fn naimi_channel_transport_preserves_safety() {
    check_channel_transport_preserves_safety::<NaimiNode>();
}
