//! `Harness` hosts the same protocol nodes outside a `World`. This suite
//! runs the shared reference scenario through `atp_sim::cluster` — the
//! transport-generic conformance driver — over the in-process channel
//! backend, and cross-checks the outcome against the identical scenario
//! run inside `World`: same grant order, same applied histories. All four
//! protocol families run it, pinned to the same seed and request script;
//! `tests/tcp_transport.rs` runs the same driver over real loopback
//! sockets.

use adaptive_token_passing::net::ChanTransport;
use adaptive_token_passing::sim::cluster::{
    run_in_world, run_on_endpoints, run_on_transport, ClusterScript, DriverOptions,
};
use adaptive_token_passing::sim::runner::ProtocolNode;
use atp_core::{BinaryNode, NaimiNode, RingNode, SearchNode};
use atp_net::Transport;

/// The generic body of the cross-transport check, shared by the
/// per-protocol tests below.
fn check_channel_transport_matches_world<P: ProtocolNode>() {
    let script = ClusterScript::reference(7);
    let world = run_in_world::<P>(&script);
    assert_eq!(
        world.grants.len(),
        script.requests.len(),
        "world must grant every request within the horizon"
    );
    let (chan, stats) = run_on_transport::<P, ChanTransport>(&script).expect("infallible");
    assert_eq!(
        world, chan,
        "behavior diverged between World and the channel transport"
    );
    assert!(stats.is_clean(), "transport not clean: {stats:?}");
}

fn check_duplicated_tokens_change_nothing<P: ProtocolNode>() {
    let script = ClusterScript::reference(7);
    let world = run_in_world::<P>(&script);
    let endpoints = ChanTransport::endpoints(script.n).expect("infallible");
    let (dup, stats) = run_on_endpoints::<P, _>(
        &script,
        endpoints,
        DriverOptions {
            dup_every_nth_token: Some(2),
            ..DriverOptions::default()
        },
    );
    assert_eq!(
        world, dup,
        "behavior diverged once the transport duplicated token frames"
    );
    assert!(stats.is_clean(), "transport not clean: {stats:?}");
}

fn check_channel_transport_preserves_safety<P: ProtocolNode>() {
    let script = ClusterScript::reference(7);
    let (run, _) = run_on_transport::<P, ChanTransport>(&script).expect("infallible");
    assert_eq!(run.grants.len(), script.requests.len());
    let max = run.histories.iter().map(|&(len, _)| len).max().unwrap();
    let digest_of_longest = run
        .histories
        .iter()
        .find(|&&(len, _)| len == max)
        .map(|&(_, d)| d)
        .unwrap();
    for &(len, digest) in &run.histories {
        if len == max {
            assert_eq!(digest, digest_of_longest, "diverged history at frontier");
        }
    }
}

/// The same nodes, the same schedule, two engines: behavior must agree —
/// for every protocol family.
#[test]
fn channel_transport_matches_world() {
    check_channel_transport_matches_world::<RingNode>();
    check_channel_transport_matches_world::<SearchNode>();
    check_channel_transport_matches_world::<BinaryNode>();
    check_channel_transport_matches_world::<NaimiNode>();
}

/// A stuttering link layer: every 2nd token-class frame is delivered
/// twice. The handoff watermark must discard each copy, so grants and
/// applied histories stay identical to the clean `World` run — duplication
/// costs nothing, not even reordering.
#[test]
fn duplicated_token_frames_do_not_change_behavior() {
    check_duplicated_tokens_change_nothing::<BinaryNode>();
}

/// The channel transport alone: every request granted exactly once and all
/// histories prefix-consistent (equal digests at equal lengths).
#[test]
fn channel_transport_preserves_safety() {
    check_channel_transport_preserves_safety::<BinaryNode>();
}

/// Naimi–Tréhel under a stuttering link: a duplicated token frame at the
/// *new* probable owner must be absorbed by the handoff watermark, not
/// re-grant.
#[test]
fn naimi_duplicated_token_frames_do_not_change_behavior() {
    check_duplicated_tokens_change_nothing::<NaimiNode>();
}

/// Naimi safety on the channel transport alone.
#[test]
fn naimi_channel_transport_preserves_safety() {
    check_channel_transport_preserves_safety::<NaimiNode>();
}
