//! Chaos test: a long mixed scenario throwing everything at System
//! BinarySearch at once — crashes, recoveries, graceful leaves, rejoins,
//! lossy cheap messages, latency jitter, and a steady request stream —
//! asserting the core invariants at the end.

use adaptive_token_passing::core::{
    BinaryNode, EventSource, ProtocolConfig, TokenEvent, Want,
};
use adaptive_token_passing::net::{
    LinkFaults, NodeId, SimTime, StepOutcome, UniformLatency, World, WorldConfig,
};
use adaptive_token_passing::util::rng::{Rng, SeedableRng, StdRng};

#[derive(Debug, Default)]
struct Ledger {
    requested: u64,
    granted: u64,
    released: u64,
    regenerations: u64,
}

impl Ledger {
    fn record(&mut self, ev: &TokenEvent) {
        match ev {
            TokenEvent::Requested { .. } => self.requested += 1,
            TokenEvent::Granted { .. } => self.granted += 1,
            TokenEvent::Released { .. } => self.released += 1,
            TokenEvent::Regenerated { .. } => self.regenerations += 1,
            _ => {}
        }
    }
}

fn drain(world: &mut World<BinaryNode>, ledger: &mut Ledger) {
    for i in 0..world.len() {
        for ev in world.node_mut(NodeId::new(i as u32)).take_events() {
            ledger.record(&ev);
        }
    }
}

/// Per-step safety oracle, evaluated after **every** dispatched event, not
/// just at the end of the run — an end-state check cannot see a transient
/// split-brain or a divergence that later heals.
///
/// Crash victims are excluded from the prefix comparison: a holder that
/// dies with entries only it applied forks history when the survivors
/// regenerate, so their suffix may legitimately diverge until resynced (the
/// end-state check still covers them after the quiet tail). Two holders are
/// only split-brain when they share a token *generation*; a stale holder
/// coexisting with a regenerated one is expected until superseded.
fn assert_chaos_oracles(world: &World<BinaryNode>, crash_victims: &[u32], at: SimTime) {
    let n = world.len();
    for a in 0..n as u32 {
        if crash_victims.contains(&a) {
            continue;
        }
        for b in a + 1..n as u32 {
            if crash_victims.contains(&b) {
                continue;
            }
            let oa = world.node(NodeId::new(a)).order();
            let ob = world.node(NodeId::new(b)).order();
            assert!(
                oa.is_prefix_of(ob) || ob.is_prefix_of(oa),
                "prefix property violated between n{a} and n{b} at {at}"
            );
        }
    }
    let holders: Vec<(u32, u32)> = (0..n as u32)
        .filter(|&i| world.is_alive(NodeId::new(i)))
        .filter(|&i| world.node(NodeId::new(i)).holds_token())
        .map(|i| (i, world.node(NodeId::new(i)).generation()))
        .collect();
    for (i, &(ia, ga)) in holders.iter().enumerate() {
        for &(ib, gb) in &holders[i + 1..] {
            assert_ne!(
                ga, gb,
                "split brain: n{ia} and n{ib} both hold generation {ga} at {at}"
            );
        }
    }
}

/// Steps the world until `until` (or quiescence), tallying token events and
/// running the safety oracles after every dispatched event.
fn step_with_oracles(
    world: &mut World<BinaryNode>,
    until: SimTime,
    crash_victims: &[u32],
    ledger: &mut Ledger,
) {
    loop {
        let at = match world.step() {
            StepOutcome::Quiescent => break,
            StepOutcome::Consumed { at } => at,
            StepOutcome::Dispatched { node, at } => {
                for ev in world.node_mut(node).take_events() {
                    ledger.record(&ev);
                }
                assert_chaos_oracles(world, crash_victims, at);
                at
            }
        };
        if at > until {
            break;
        }
    }
}

#[test]
fn chaos_run_preserves_safety() {
    let n = 12usize;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let cfg = ProtocolConfig::default()
        .with_service_ticks(1)
        .with_regeneration(60)
        .with_adaptive_speed(true);
    let mut world: World<BinaryNode> = World::from_nodes(
        (0..n).map(|_| BinaryNode::new(cfg)).collect(),
        WorldConfig::default()
            .seed(999)
            .latency(UniformLatency::new(1, 3))
            .link_faults(LinkFaults::control_drops(0.3)),
    );

    // Fault schedule: nodes 9, 10, 11 cycle through crash/recover; nodes 7, 8
    // leave gracefully and later rejoin. Nodes 0–6 stay healthy and request.
    for (k, victim) in [(0u64, 9u32), (1, 10), (2, 11)] {
        world.schedule_crash(SimTime::from_ticks(150 + 400 * k), NodeId::new(victim));
        world.schedule_recover(SimTime::from_ticks(350 + 400 * k), NodeId::new(victim));
    }
    world.schedule_external(SimTime::from_ticks(100), NodeId::new(7), Want::leave());
    world.schedule_external(SimTime::from_ticks(120), NodeId::new(8), Want::leave());
    world.schedule_external(SimTime::from_ticks(900), NodeId::new(7), Want::rejoin());
    world.schedule_external(SimTime::from_ticks(1100), NodeId::new(8), Want::rejoin());

    // Healthy nodes request throughout.
    let mut healthy_requests = 0u64;
    for t in (5..1_600).step_by(9) {
        let node = NodeId::new(rng.gen_range(0..7));
        world.schedule_external(SimTime::from_ticks(t), node, Want::new(t));
        healthy_requests += 1;
    }

    let crash_victims = [9u32, 10, 11];
    let mut ledger = Ledger::default();
    step_with_oracles(
        &mut world,
        SimTime::from_ticks(1_700),
        &crash_victims,
        &mut ledger,
    );
    // Quiet tail: let stragglers, syncs and regenerations settle, with the
    // oracles still armed on every event.
    let tail = SimTime::from_ticks(world.now().ticks() + 1_500);
    step_with_oracles(&mut world, tail, &crash_victims, &mut ledger);
    drain(&mut world, &mut ledger);

    // 1. Every grant has a matching release; grants never exceed requests.
    assert_eq!(ledger.granted, ledger.released);
    assert!(ledger.granted <= ledger.requested);

    // 2. All healthy-node requests are served (nodes 0–6 never fault).
    let healthy_grants: u64 = (0..7)
        .map(|i| world.node(NodeId::new(i)).grants())
        .sum();
    assert_eq!(
        healthy_grants, healthy_requests,
        "healthy nodes must not lose requests"
    );

    // 3. Prefix property holds pairwise across ALL nodes, including the
    //    recovered and rejoined ones.
    for a in 0..n {
        for b in 0..n {
            let oa = world.node(NodeId::new(a as u32)).order();
            let ob = world.node(NodeId::new(b as u32)).order();
            assert!(
                oa.is_prefix_of(ob) || ob.is_prefix_of(oa),
                "prefix property violated between n{a} and n{b}"
            );
        }
    }

    // 4. At most one current-generation token exists: count holders.
    let holders = (0..n)
        .filter(|&i| world.node(NodeId::new(i as u32)).holds_token())
        .count();
    assert!(holders <= 1, "split brain: {holders} holders");

    // 5. The fault schedule actually exercised regeneration.
    assert!(
        ledger.regenerations >= 1,
        "chaos schedule should have killed at least one token"
    );

    // 6. Rejoined nodes are being visited again.
    let before = world.node(NodeId::new(7)).last_visit().value();
    world.run_for(200);
    assert!(
        world.node(NodeId::new(7)).last_visit().value() > before,
        "rejoined node 7 is still excluded"
    );
}

#[test]
fn chaos_is_deterministic() {
    let run = || {
        let cfg = ProtocolConfig::default()
            .with_service_ticks(1)
            .with_regeneration(50);
        let mut world: World<BinaryNode> = World::from_nodes(
            (0..8).map(|_| BinaryNode::new(cfg)).collect(),
            WorldConfig::default()
                .seed(4242)
                .latency(UniformLatency::new(1, 4))
                .link_faults(LinkFaults::control_drops(0.5)),
        );
        world.schedule_crash(SimTime::from_ticks(30), NodeId::new(0));
        world.schedule_recover(SimTime::from_ticks(200), NodeId::new(0));
        for t in (2..400).step_by(7) {
            world.schedule_external(
                SimTime::from_ticks(t),
                NodeId::new((t % 8) as u32),
                Want::new(t),
            );
        }
        world.run_until(SimTime::from_ticks(900));
        let mut all = Vec::new();
        for i in 0..8 {
            all.extend(world.node_mut(NodeId::new(i)).take_events());
        }
        all.sort_by_key(|e| e.at());
        format!("{all:?}")
    };
    assert_eq!(run(), run());
}
