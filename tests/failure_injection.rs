//! Failure-injection integration tests: Section 5's sketch, exercised
//! end-to-end across all three protocols.

use adaptive_token_passing::core::{
    BinaryNode, EventSource, ProtocolConfig, RingNode, TokenEvent, Want,
};
use adaptive_token_passing::net::{FailurePlan, NodeId, SimTime, World, WorldConfig};
use adaptive_token_passing::sim::runner::{run_experiment, ExperimentSpec, Protocol};
use adaptive_token_passing::sim::workload::{GlobalPoisson, SingleShot};

fn regen_cfg() -> ProtocolConfig {
    ProtocolConfig::default()
        .with_service_ticks(4)
        .with_regeneration(24)
}

/// Crash the holder of every protocol; a pending request must still be
/// served, via regeneration.
#[test]
fn all_protocols_survive_holder_crash() {
    for protocol in Protocol::ALL {
        let failures = FailurePlan::new()
            .crash_at(SimTime::from_ticks(1), NodeId::new(0))
            .crash_at(SimTime::from_ticks(1), NodeId::new(1));
        let spec = ExperimentSpec::new(protocol, 8, 2_000)
            .with_cfg(regen_cfg())
            .with_failures(failures);
        let mut wl = SingleShot::new(SimTime::from_ticks(4), NodeId::new(5));
        let s = run_experiment(&spec, &mut wl);
        assert_eq!(
            s.metrics.grants, 1,
            "{}: request not served after holder crash",
            protocol.label()
        );
        assert!(
            s.metrics.regenerations >= 1,
            "{}: no regeneration occurred",
            protocol.label()
        );
    }
}

/// Repeated crashes: kill each successive regenerated holder; generations
/// climb, liveness persists for the survivors.
#[test]
fn repeated_crashes_escalate_generations() {
    let n = 8;
    let mut failures = FailurePlan::new();
    // Kill nodes 0..3 in waves.
    for (k, t) in [(0u32, 1u64), (1, 120), (2, 300), (3, 500)] {
        failures = failures.crash_at(SimTime::from_ticks(t), NodeId::new(k));
    }
    let spec = ExperimentSpec::new(Protocol::Binary, n, 4_000)
        .with_cfg(regen_cfg())
        .with_failures(failures);
    let mut wl = GlobalPoisson::new(40.0);
    let s = run_experiment(&spec, &mut wl);
    // Some requests land on crashed nodes and die with them; every request
    // from a live node is eventually granted.
    assert!(s.metrics.grants > 0);
    assert!(s.metrics.regenerations >= 1);
}

/// A recovered node rejoins the rotation and can acquire the token again.
#[test]
fn recovery_rejoins_rotation() {
    let cfg = regen_cfg();
    let mut world: World<BinaryNode> = World::from_nodes(
        (0..6).map(|_| BinaryNode::new(cfg)).collect(),
        WorldConfig::default(),
    );
    // Crash node 2 while it serves; regenerate; then recover it.
    world.schedule_external(SimTime::ZERO, NodeId::new(2), Want::new(1));
    world.run_until(SimTime::from_ticks(4));
    assert!(world.node(NodeId::new(2)).holds_token());
    let t = world.now();
    world.schedule_crash(t, NodeId::new(2));
    world.schedule_external(t + 2, NodeId::new(4), Want::new(2));
    world.run_until(SimTime::from_ticks(600));
    assert_eq!(world.node(NodeId::new(4)).grants(), 1);

    let t = world.now();
    world.schedule_recover(t, NodeId::new(2));
    world.schedule_external(t + 40, NodeId::new(2), Want::new(3));
    world.run_for(600);
    assert_eq!(
        world.node(NodeId::new(2)).grants(),
        2,
        "recovered node should be served again"
    );
    // A node that was down longer than the token's two-round carried window
    // misses the older entries; gap detection triggers a state transfer
    // from its successor, so it must fully catch up (peers keep full logs
    // in this test: record_log is on by default).
    world.run_for(50);
    let order = world.node(NodeId::new(2)).order();
    assert!(
        order.applied_seq() >= 2,
        "recovered node should catch up via state transfer (applied {}, gaps {})",
        order.applied_seq(),
        order.gap_events()
    );
    // And its prefix agrees with everyone else's.
    for i in [0u32, 1, 3, 4, 5] {
        let other = world.node(NodeId::new(i)).order();
        assert!(order.is_prefix_of(other) || other.is_prefix_of(order));
    }
}

/// Crashing a node that never held the token: the ring regenerates once the
/// rotation dead-letters at it, and afterwards routes around it.
#[test]
fn ring_routes_around_dead_bystander() {
    let cfg = regen_cfg();
    let mut world: World<RingNode> = World::from_nodes(
        (0..6).map(|_| RingNode::new(cfg)).collect(),
        WorldConfig::default(),
    );
    world.schedule_crash(SimTime::from_ticks(1), NodeId::new(3));
    world.schedule_external(SimTime::from_ticks(5), NodeId::new(5), Want::new(9));
    world.run_until(SimTime::from_ticks(1_500));
    assert_eq!(world.node(NodeId::new(5)).grants(), 1);
    // After regeneration the token keeps cycling among the 5 live nodes: all
    // should keep receiving fresh stamps.
    let before: Vec<u64> = (0..6)
        .map(|i| world.node(NodeId::new(i)).last_visit().value())
        .collect();
    world.run_for(100);
    for i in [0u32, 1, 2, 4, 5] {
        let after = world.node(NodeId::new(i)).last_visit().value();
        assert!(
            after > before[i as usize],
            "live node {i} starved after exclusion"
        );
    }
}

/// Crash-during-inquiry: the inquirer itself dies; another requester
/// eventually completes regeneration.
#[test]
fn inquirer_crash_does_not_wedge_recovery() {
    let cfg = regen_cfg();
    let mut world: World<BinaryNode> = World::from_nodes(
        (0..6).map(|_| BinaryNode::new(cfg)).collect(),
        WorldConfig::default(),
    );
    // Kill the initial holder immediately.
    world.schedule_external(SimTime::ZERO, NodeId::new(0), Want::new(1));
    world.run_until(SimTime::from_ticks(2));
    world.schedule_crash(world.now(), NodeId::new(0));
    // First requester starts suspecting, then dies mid-inquiry (~t=30).
    world.schedule_external(SimTime::from_ticks(4), NodeId::new(2), Want::new(2));
    world.schedule_crash(SimTime::from_ticks(30), NodeId::new(2));
    // Second requester finishes the job.
    world.schedule_external(SimTime::from_ticks(10), NodeId::new(4), Want::new(3));
    world.run_until(SimTime::from_ticks(1_000));
    assert_eq!(world.node(NodeId::new(4)).grants(), 1);
    let mut regen_seen = false;
    for i in 0..6 {
        for ev in world.node_mut(NodeId::new(i)).take_events() {
            if matches!(ev, TokenEvent::Regenerated { .. }) {
                regen_seen = true;
            }
        }
    }
    assert!(regen_seen);
}
