//! Distributed mutual exclusion on a real multi-threaded cluster.
//!
//! Each node runs on its own OS thread; messages travel as encoded byte
//! frames over channels (the same wire format a socket deployment would
//! use). Several "clients" contend for the token-guarded critical section;
//! the event stream proves mutual exclusion: grants never overlap.
//!
//! ```sh
//! cargo run --example distributed_mutex
//! ```

use std::time::{Duration, Instant};

use adaptive_token_passing::core::{Cluster, ClusterConfig, ProtocolConfig, TokenEvent};
use adaptive_token_passing::net::NodeId;

fn main() {
    let n = 6;
    let requests_per_node = 3;
    println!("== distributed mutex: {n} threads, {requests_per_node} acquisitions each ==\n");

    let cfg = ClusterConfig::new(n)
        .with_tick(Duration::from_micros(300))
        .with_protocol(
            ProtocolConfig::default()
                .with_service_ticks(2) // hold the lock for 2 ticks
                .with_adaptive_speed(true)
                .with_max_idle_pass_ticks(64),
        );
    let cluster: Cluster = Cluster::start(cfg);

    // Every node asks for the critical section several times.
    for round in 0..requests_per_node {
        for i in 0..n {
            cluster.request(NodeId::new(i as u32), (round * n + i) as u64);
        }
    }

    // Observe the grant/release interleaving and verify mutual exclusion.
    let expected = n * requests_per_node;
    let mut grants = 0;
    let mut in_section: Option<NodeId> = None;
    let mut max_concurrent_violations = 0;
    let deadline = Instant::now() + Duration::from_secs(30);
    while grants < expected && Instant::now() < deadline {
        match cluster.events().recv_timeout(Duration::from_millis(500)) {
            Ok((node, TokenEvent::Granted { req, .. })) => {
                if in_section.is_some() {
                    max_concurrent_violations += 1;
                }
                in_section = Some(node);
                grants += 1;
                println!("ENTER  {node} (request {req})");
            }
            Ok((node, TokenEvent::Released { .. })) => {
                if in_section == Some(node) {
                    in_section = None;
                }
                println!("LEAVE  {node}");
            }
            Ok(_) => {}
            Err(_) => {}
        }
    }

    println!("\n{grants}/{expected} acquisitions completed");
    println!("per-node grant counts: {:?}", cluster.grants());
    assert_eq!(
        max_concurrent_violations, 0,
        "two nodes were in the critical section at once!"
    );
    println!("mutual exclusion held throughout ✓");
    cluster.shutdown();
}
