//! Quickstart: run System BinarySearch on a simulated ring and watch one
//! request being served in O(log N) message delays.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adaptive_token_passing::core::{BinaryNode, EventSource, ProtocolConfig, TokenEvent, Want};
use adaptive_token_passing::net::{MsgClass, NodeId, SimTime, World, WorldConfig};

fn main() {
    let n = 64;
    println!("== adaptive token passing: quickstart ==");
    println!("ring of {n} nodes, unit message delay, token minted at n0\n");

    // Build the world: 64 nodes running the paper's System BinarySearch.
    let cfg = ProtocolConfig::default();
    let mut world: World<BinaryNode> = World::from_nodes(
        (0..n).map(|_| BinaryNode::new(cfg)).collect(),
        WorldConfig::default(),
    );

    // Let the token rotate a while, then node 40 wants to broadcast 1234.
    let requester = NodeId::new(40);
    let request_at = SimTime::from_ticks(10);
    world.schedule_external(request_at, requester, Want::new(1234));
    world.run_until(SimTime::from_ticks(200));

    // The node reports what happened through its event stream.
    for ev in world.node_mut(requester).take_events() {
        match ev {
            TokenEvent::Requested { req, at } => println!("{at}  {req} became ready"),
            TokenEvent::Granted { req, at } => {
                let waited = at.since(request_at);
                println!("{at}  {req} granted after {waited} message delays (log2 {n} = {})",
                    (n as f64).log2());
            }
            TokenEvent::Released { req, at } => println!("{at}  {req} released the token"),
            TokenEvent::Delivered { entry, at } => {
                println!("{at}  delivered {entry} into the local history")
            }
            other => println!("      {other:?}"),
        }
    }

    // Everyone eventually delivers the broadcast in the same global order.
    let delivered = (0..n)
        .filter(|&i| world.node(NodeId::new(i as u32)).order().applied_seq() == 1)
        .count();
    println!("\n{delivered}/{n} nodes have applied the broadcast");
    println!(
        "network: {} token messages, {} search messages",
        world.stats().sent(MsgClass::Token),
        world.stats().sent(MsgClass::Control),
    );
}
