//! The high-level service API: leases (mutual exclusion) and totally
//! ordered broadcast over a real multi-threaded cluster, in a dozen lines.
//!
//! ```sh
//! cargo run --example token_service
//! ```

use std::time::Duration;

use adaptive_token_passing::core::{ClusterConfig, ProtocolConfig, TokenService};
use adaptive_token_passing::net::NodeId;

fn main() {
    let n = 4;
    println!("== TokenService: leases + ordered broadcast over {n} threads ==\n");

    let service = TokenService::start(
        ClusterConfig::new(n)
            .with_tick(Duration::from_micros(300))
            .with_protocol(
                ProtocolConfig::default()
                    .with_service_ticks(2)
                    .with_adaptive_speed(true),
            ),
    );

    // 1. Mutual exclusion: take a lease from node 2's point of view.
    let lease = service
        .lock(NodeId::new(2), Duration::from_secs(10))
        .expect("lease");
    println!("lease acquired by {} — exclusive for the configured 2-tick lease\n", lease.node);

    // 2. Totally ordered broadcast from every node concurrently.
    for i in 0..n {
        service
            .broadcast(NodeId::new(i as u32), 100 + i as u64)
            .expect("broadcast committed");
        println!("node n{i} committed its broadcast");
    }

    // 3. Consume the global order: seq numbers are gap-free and identical
    //    for every observer.
    println!("\nglobal order:");
    // The lease's zero-payload acquisition also occupies a history slot.
    for _ in 0..=n {
        match service.next_delivery(Duration::from_secs(10)) {
            Ok(d) => println!("  #{:<3} {} broadcast {}", d.seq, d.origin, d.payload),
            Err(e) => {
                println!("  (stream ended: {e})");
                break;
            }
        }
    }

    service.shutdown();
    println!("\ndone — see `TokenService` in atp-core for the API");
}
