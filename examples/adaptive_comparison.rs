//! Ring vs Search vs BinarySearch under four load profiles — the trade-off
//! story of the paper's introduction, reproduced at the terminal.
//!
//! *"Ring-based protocols maximize throughput in busy systems, but can incur
//! a linear delay … logarithmic, tree-based protocols provide excellent
//! response when the use is bursty but infrequent. Our adaptive scheme
//! provides the best of both."*
//!
//! ```sh
//! cargo run --release --example adaptive_comparison
//! ```

use adaptive_token_passing::sim::report::{f2, Table};
use adaptive_token_passing::sim::runner::{run_experiment, ExperimentSpec, Protocol};
use adaptive_token_passing::sim::workload::{Bursty, GlobalPoisson, Saturated, Workload};

fn main() {
    let n = 64;
    let horizon = 30_000;
    println!("== protocol comparison, n = {n} ==\n");

    type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload>>;
    let workloads: Vec<(&str, WorkloadFactory)> = vec![
        (
            "saturated (all nodes busy)",
            Box::new(|| Box::new(Saturated::new(1))),
        ),
        (
            "steady (gap 10)",
            Box::new(|| Box::new(GlobalPoisson::new(10.0))),
        ),
        (
            "light (gap 200)",
            Box::new(|| Box::new(GlobalPoisson::new(200.0))),
        ),
        (
            "bursty & infrequent",
            Box::new(|| Box::new(Bursty::new(500.0))),
        ),
    ];

    let mut table = Table::new(vec![
        "workload",
        "ring",
        "search",
        "binary",
        "winner",
    ])
    .title("mean responsiveness (ticks; lower is better)");

    for (name, make) in &workloads {
        let mut means = Vec::new();
        for protocol in Protocol::ALL {
            let spec = ExperimentSpec::new(protocol, n, horizon).with_seed(7);
            let mut wl = make();
            let summary = run_experiment(&spec, wl.as_mut());
            means.push(summary.metrics.responsiveness.mean);
        }
        let winner = Protocol::ALL
            .iter()
            .zip(&means)
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(p, _)| p.label())
            .unwrap_or("-");
        table.row(vec![
            name.to_string(),
            f2(means[0]),
            f2(means[1]),
            f2(means[2]),
            winner.to_string(),
        ]);
    }
    table.note("binary should match the ring when busy and the search when idle");
    println!("{}", table.render());
}
