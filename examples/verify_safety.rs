//! Machine-check the paper's safety claims: explore every reachable state of
//! each refinement level on a small instance and verify the prefix property,
//! token uniqueness, and the simulation into the previous level.
//!
//! This is the executable counterpart of the paper's Lemmas 1–3 and
//! Theorem 1.
//!
//! ```sh
//! cargo run --release --example verify_safety
//! ```

use adaptive_token_passing::spec::check::check_prefix_everywhere;
use adaptive_token_passing::spec::refinement::check_refinement;
use adaptive_token_passing::spec::systems::{binary, mp, s, s1, search, token};
use adaptive_token_passing::trs::Explorer;

fn main() {
    let (n, b) = (3, 1);
    println!("== exhaustive safety checking, n = {n}, ≤{b} broadcast/node ==\n");

    println!("{:<18} {:>9}  claim checked", "system", "states");
    println!("{}", "-".repeat(64));

    let r = check_prefix_everywhere(&s::system(n, b), s::initial(n), s::prefix_ok, 500_000);
    println!("{:<18} {:>9}  data uniqueness in H — {}", "S", r.states(), verdict(r.holds()));

    let r = check_prefix_everywhere(&s1::system(n, b), s1::initial(n), s1::prefix_ok, 500_000);
    println!("{:<18} {:>9}  Lemma 1 (prefix property) — {}", "S1", r.states(), verdict(r.holds()));

    let r = check_prefix_everywhere(
        &token::system(n, b),
        token::initial(n),
        token::prefix_ok,
        500_000,
    );
    println!("{:<18} {:>9}  Lemma 2 (prefix property) — {}", "Token", r.states(), verdict(r.holds()));

    let r = check_prefix_everywhere(&mp::system(n, b), mp::initial(n), mp::prefix_ok, 500_000);
    println!("{:<18} {:>9}  Lemma 3 (prefix property) — {}", "Message-Passing", r.states(), verdict(r.holds()));
    let r = check_prefix_everywhere(&mp::system(n, b), mp::initial(n), mp::token_unique, 500_000);
    println!("{:<18} {:>9}  token uniqueness — {}", "Message-Passing", r.states(), verdict(r.holds()));

    let r = check_prefix_everywhere(
        &search::system(2, b),
        search::initial(2),
        search::prefix_ok,
        100_000,
    );
    println!("{:<18} {:>9}  prefix property (n=2, exhaustive) — {}", "Search", r.states(), verdict(r.holds()));
    let r = check_prefix_everywhere(
        &search::system(n, b),
        search::initial(n),
        search::prefix_ok,
        150_000,
    );
    println!("{:<18} {:>9}  prefix property (n=3, bounded) — {}", "Search", r.states(), verdict(r.violation_free()));

    let r = check_prefix_everywhere(
        &binary::system(2, b),
        binary::initial(2),
        binary::prefix_ok,
        100_000,
    );
    println!("{:<18} {:>9}  Theorem 1 (n=2, exhaustive) — {}", "BinarySearch", r.states(), verdict(r.holds()));
    let r = check_prefix_everywhere(
        &binary::system(n, b),
        binary::initial(n),
        binary::prefix_ok,
        150_000,
    );
    println!("{:<18} {:>9}  Theorem 1 (n=3, bounded) — {}", "BinarySearch", r.states(), verdict(r.violation_free()));
    let r = check_prefix_everywhere(
        &binary::system(2, b),
        binary::initial(2),
        binary::token_unique,
        100_000,
    );
    println!("{:<18} {:>9}  token uniqueness (n=2) — {}", "BinarySearch", r.states(), verdict(r.holds()));

    println!("\nrefinement chain (every concrete step simulates the abstraction):");
    let g = Explorer::with_max_states(500_000).explore(&s1::system(n, b), s1::initial(n));
    report("S1 ⊑ S", check_refinement(&g, &s::system(n, b), s1::to_s, 1).is_ok());
    let g = Explorer::with_max_states(500_000).explore(&token::system(n, b), token::initial(n));
    report("Token ⊑ S1", check_refinement(&g, &s1::system(n, b), token::to_s1, 2).is_ok());
    let g = Explorer::with_max_states(500_000).explore(&mp::system(2, b), mp::initial(2));
    report("MP ⊑ S1", check_refinement(&g, &s1::system(2, b), mp::to_s1, 2).is_ok());
    let g = Explorer::with_max_states(800_000).explore(&search::system(2, b), search::initial(2));
    report("Search ⊑ MP", check_refinement(&g, &mp::system(2, b), search::to_mp, 1).is_ok());
    let g = Explorer::with_max_states(800_000).explore(&binary::system(2, b), binary::initial(2));
    report(
        "BinarySearch ⊑ Search",
        check_refinement(&g, &search::system(2, b), binary::to_search, 2).is_ok(),
    );
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "HOLDS ✓"
    } else {
        "VIOLATED ✗"
    }
}

fn report(name: &str, ok: bool) {
    println!("  {:<24} {}", name, verdict(ok));
    assert!(ok, "{name} failed");
}
