//! Totally ordered broadcast — the paper's motivating application.
//!
//! Several nodes broadcast concurrently; the token serializes the messages
//! into one global history `H`, and every node applies exactly the same
//! prefix of it (Definition 2's prefix property). This example runs the
//! scenario on the deterministic simulator with jittery latencies and lossy
//! cheap messages, then verifies the prefix property across all nodes.
//!
//! ```sh
//! cargo run --example ordered_broadcast
//! ```

use adaptive_token_passing::core::{BinaryNode, ProtocolConfig, Want};
use adaptive_token_passing::net::{
    LinkFaults, NodeId, SimTime, UniformLatency, World, WorldConfig,
};

fn main() {
    let n = 10;
    println!("== totally ordered broadcast over System BinarySearch ==");
    println!("{n} nodes, latency U(1,4), 30% of search messages lost\n");

    let cfg = ProtocolConfig::default(); // record_log on: full histories kept
    let mut world: World<BinaryNode> = World::from_nodes(
        (0..n).map(|_| BinaryNode::new(cfg)).collect(),
        WorldConfig::default()
            .seed(2024)
            .latency(UniformLatency::new(1, 4))
            .link_faults(LinkFaults::control_drops(0.3)),
    );

    // A burst of concurrent broadcasts from every node.
    for k in 0..30u64 {
        let node = NodeId::new((k % n as u64) as u32);
        world.schedule_external(SimTime::from_ticks(1 + k * 3), node, Want::new(100 + k));
    }
    world.run_until(SimTime::from_ticks(2_000));

    // Print each node's view: applied prefix length + digest.
    println!("node  applied  digest");
    for (id, node) in world.nodes() {
        println!(
            "{id:>4}  {:>7}  {:016x}",
            node.order().applied_seq(),
            node.order().digest().0
        );
    }

    // Verify the prefix property pairwise.
    let nodes: Vec<_> = (0..n).map(|i| world.node(NodeId::new(i as u32))).collect();
    for a in &nodes {
        for b in &nodes {
            assert!(
                a.order().is_prefix_of(b.order()) || b.order().is_prefix_of(a.order()),
                "prefix property violated!"
            );
        }
    }
    println!("\nevery local history is a prefix of every longer one ✓");

    // Show the committed order as seen by the most caught-up node.
    let longest = nodes
        .iter()
        .max_by_key(|nd| nd.order().applied_seq())
        .unwrap();
    let order: Vec<String> = longest
        .order()
        .log()
        .iter()
        .take(10)
        .map(|e| format!("{}:{}", e.origin, e.payload))
        .collect();
    println!("global order (first 10): {}", order.join(" → "));
}
